#include "exec/host_backend.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "sim/trace.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace amped::exec {

std::string to_string(ExecBackend backend) {
  switch (backend) {
    case ExecBackend::kSimulated:
      return "sim";
    case ExecBackend::kHostParallel:
      return "host";
  }
  return "?";
}

ExecBackend parse_backend(const std::string& name) {
  if (name == "sim" || name == "simulated") return ExecBackend::kSimulated;
  if (name == "host" || name == "host-parallel") {
    return ExecBackend::kHostParallel;
  }
  throw std::invalid_argument("unknown backend '" + name +
                              "' (expected: sim, host)");
}

namespace {

// Lane-private "device global memory": the staged copy of one shard
// payload plus the view the kernel reads it through. A CUDA port swaps
// the owned tensor for a device allocation; the view indirection (data +
// absolute base) is unchanged.
struct DeviceBuffer {
  CooTensor elements;
  io::ShardStreamer::View view;
  bool valid = false;
};

// The real H2D: copies elements [begin, end) of the stream view into
// `buf`. After this the kernel reads `buf`, never the stream view, so
// the streamer is free to recycle its buffer for the next position.
void stage_payload(const io::ShardStreamer::View& src_view, nnz_t begin,
                   nnz_t end, DeviceBuffer& buf) {
  const CooTensor& src = *src_view.data;
  assert(begin >= src_view.base && end <= src_view.base + src.nnz() &&
         "H2D payload outside its stream view");
  const auto lo = static_cast<std::ptrdiff_t>(begin - src_view.base);
  const auto hi = static_cast<std::ptrdiff_t>(end - src_view.base);
  std::vector<std::vector<index_t>> cols(src.num_modes());
  for (std::size_t mode = 0; mode < src.num_modes(); ++mode) {
    const auto idx = src.indices(mode);
    cols[mode].assign(idx.begin() + lo, idx.begin() + hi);
  }
  const auto vals = src.values();
  buf.elements = CooTensor::from_parts(
      src.dims(), std::move(cols),
      std::vector<value_t>(vals.begin() + lo, vals.begin() + hi));
  buf.view = {&buf.elements, begin};
  buf.valid = true;
}

// Per-lane (or per-dynamic-worker) accounting, merged into the
// ExecReport after the lane's thread has been joined — no concurrent
// writes to shared report state anywhere.
struct LaneStats {
  double fetch = 0.0;
  double h2d = 0.0;
  double d2h = 0.0;
  double predicted_h2d = 0.0;
  // Same transfers priced at the fluid share for the lanes actually
  // streaming when each copy started (sampled from the run's live
  // counter) — the contention-model column bench_backend_validation
  // compares against wall_h2d.
  double predicted_h2d_fluid = 0.0;
  double compute = 0.0;            // measured kernel wall seconds
  double predicted_compute = 0.0;  // cost-model seconds from the closures
  double end = -1.0;  // run-clock offset when the lane finished (-1 = idle)
  std::vector<double> scope_compute;
  std::vector<std::uint64_t> scope_rows;
  // Graph runs only: run-clock offsets of each scope's first kernel start
  // and last kernel finish on this lane (-1 = no kernel ran).
  std::vector<double> scope_start;
  std::vector<double> scope_finish;
};

// Structured cancellation for one plan run: the first failure anywhere
// (lane thread, copy engine, dynamic worker, serial segment) records its
// exception and flips the cancel flag; every sibling polls the flag at
// its next task/unit boundary and unwinds cleanly. After all threads are
// joined, the earliest-recorded error is rethrown — one exception out,
// no hung condition waits, no leaked threads or staging buffers.
struct CancelGroup {
  std::atomic<bool> cancel{false};
  std::mutex mutex;
  std::exception_ptr first_error;

  bool cancelled() const { return cancel.load(std::memory_order_relaxed); }

  // Call from a catch block: records the in-flight exception (first
  // writer wins — errors are recorded in real-time order, so this is the
  // earliest) and cancels the run.
  void capture() noexcept {
    cancel.store(true, std::memory_order_relaxed);
    std::lock_guard lock(mutex);
    if (!first_error) first_error = std::current_exception();
  }

  void rethrow_if_any() {
    std::exception_ptr e;
    {
      std::lock_guard lock(mutex);
      e = first_error;
    }
    if (e) std::rethrow_exception(e);
  }
};

struct RunContext {
  sim::Platform& platform;
  Plan& plan;
  const WallTimer& clock;  // whole-run timer; lane-end offsets read it
  CancelGroup& cg;         // one per run_plan_host_parallel call
  sim::TraceLog* trace;    // platform's attached trace, or nullptr
  // Live count of lanes inside a staging copy right now; each H2D samples
  // it (inclusive of itself) to price its fluid-contention prediction.
  std::atomic<int>& streaming_lanes;
};

// Stages one payload while holding the streaming-lane counter, and books
// both predicted columns: the legacy static all-lanes share and the fluid
// share at the sampled concurrency.
void stage_counted(RunContext& rc, const io::ShardStreamer::View& view,
                   const Task& t, DeviceBuffer& buf, LaneStats& stats) {
  const int lanes =
      rc.streaming_lanes.fetch_add(1, std::memory_order_relaxed) + 1;
  stage_payload(view, t.payload_begin, t.payload_end, buf);
  rc.streaming_lanes.fetch_sub(1, std::memory_order_relaxed);
  stats.predicted_h2d += rc.platform.h2d_seconds(t.transfer_bytes);
  stats.predicted_h2d_fluid +=
      rc.platform.h2d_seconds(t.transfer_bytes, lanes);
}

// Start stamp for a trace span: seconds on the shared log's clock, so
// events from every plan run in one job land on one monotone time base.
double trace_now(const RunContext& rc) {
  return rc.trace != nullptr ? rc.trace->host_now() : 0.0;
}

// Records one wall-clock operation. Engine 0 is the lane/worker/compute
// thread, engine 1 the pipelined lane's copy engine — the same rows the
// simulator's events map to, so sim and host traces of one plan render
// side by side.
void trace_op(const RunContext& rc, int device, int engine, sim::Phase phase,
              double start_s, double duration_s, std::string label) {
  if (rc.trace == nullptr) return;
  sim::TraceEvent e;
  e.device = device;
  e.engine = engine;
  e.phase = phase;
  e.start_s = start_s;
  e.duration_s = duration_s;
  e.label = std::move(label);
  rc.trace->record(std::move(e));
}

// Mirrors the simulator's kernel labelling (shard grids only); unlabelled
// kernels fall back to the phase name in the Chrome export, same as sim.
std::string kernel_label(const Task& t) {
  return t.labelled ? shard_label(t) : std::string();
}

std::string h2d_label(const Task& t) {
  return "h2d scope" + std::to_string(t.scope) + " [" +
         std::to_string(t.payload_begin) + "," +
         std::to_string(t.payload_end) + ")";
}

metrics::Histogram& kernel_seconds_hist() {
  static metrics::Histogram& h =
      metrics::histogram("exec.host.kernel_seconds");
  return h;
}

// Groups `ids` into dispatch units: consecutive tasks through their
// closing kernel (the same unit boundary the simulator's dynamic
// dispatch uses).
std::vector<std::vector<std::size_t>> split_units(
    const Plan& plan, const std::vector<std::size_t>& ids) {
  std::vector<std::vector<std::size_t>> units;
  std::vector<std::size_t> unit;
  for (std::size_t id : ids) {
    unit.push_back(id);
    if (plan.tasks[id].kind == TaskKind::kKernel) {
      units.push_back(std::move(unit));
      unit.clear();
    }
  }
  assert(unit.empty() && "lane must end each unit with a kernel");
  return units;
}

bool annotated(const Task& t) { return t.payload_end > t.payload_begin; }

// Sequential engine: one thread runs the lane's tasks in program order —
// acquire, stage, compute, copy back. Also the fallback for lanes whose
// transfers carry no payload annotation (baseline lowerings), where the
// kernel reads the stream view directly like the simulator's lanes.
void run_lane_sequential(RunContext& rc, int gpu,
                         const std::vector<std::size_t>& ids,
                         LaneStats& stats) {
  Plan& plan = rc.plan;
  io::ShardStreamer::View view;
  bool have_view = false;
  DeviceBuffer staged;
  std::vector<unsigned char> bounce_src, bounce_dst;
  for (std::size_t id : ids) {
    // A sibling lane failed: stop at the next task boundary so the whole
    // segment unwinds promptly instead of finishing a doomed mode.
    if (rc.cg.cancelled()) return;
    AMPED_FAULT_POINT("host.lane");
    Task& t = plan.tasks[id];
    switch (t.kind) {
      case TaskKind::kSpillFetch: {
        const double ts = trace_now(rc);
        WallTimer w;
        view = plan.streamers[t.streamer]->acquire(t.stream_pos);
        have_view = true;
        const double el = w.seconds();
        stats.fetch += el;
        trace_op(rc, gpu, 0, sim::Phase::kHostCompute, ts, el,
                 "fetch pos" + std::to_string(t.stream_pos));
        break;
      }
      case TaskKind::kH2D: {
        const double ts = trace_now(rc);
        WallTimer w;
        if (annotated(t)) {
          assert(have_view && "annotated H2D with no stream view");
          stage_counted(rc, view, t, staged, stats);
        } else {
          staged.valid = false;
          stats.predicted_h2d += rc.platform.h2d_seconds(t.transfer_bytes);
          stats.predicted_h2d_fluid +=
              rc.platform.h2d_seconds(t.transfer_bytes, 1);
        }
        const double el = w.seconds();
        stats.h2d += el;
        trace_op(rc, gpu, 0, sim::Phase::kHostToDevice, ts, el,
                 h2d_label(t));
        break;
      }
      case TaskKind::kD2H: {
        // Partial results already live in host memory; move the same
        // byte count through a bounce buffer so the transfer is a real
        // copy of the plan's size — the slot a device port fills with a
        // genuine device-to-host DMA.
        const double ts = trace_now(rc);
        WallTimer w;
        bounce_src.resize(t.transfer_bytes);
        bounce_dst.resize(t.transfer_bytes);
        if (t.transfer_bytes) {
          std::memcpy(bounce_dst.data(), bounce_src.data(),
                      t.transfer_bytes);
        }
        const double el = w.seconds();
        stats.d2h += el;
        trace_op(rc, gpu, 0, sim::Phase::kDeviceToHost, ts, el,
                 "d2h scope" + std::to_string(t.scope));
        break;
      }
      case TaskKind::kKernel: {
        const ExecContext ctx{rc.platform, gpu,
                              staged.valid ? &staged.view
                                           : (have_view ? &view : nullptr)};
        const double ts = trace_now(rc);
        WallTimer w;
        const double predicted = t.kernel(ctx);
        const double wall = w.seconds();
        stats.compute += wall;
        stats.predicted_compute += predicted;
        stats.scope_compute[t.scope] += wall;
        stats.scope_rows[t.scope] += t.owned_rows;
        kernel_seconds_hist().record_seconds(wall);
        trace_op(rc, gpu, 0, sim::Phase::kCompute, ts, wall,
                 kernel_label(t));
        break;
      }
      default:
        assert(false && "global task inside a lane");
    }
  }
  stats.end = rc.clock.seconds();
}

// Pipelined engine: a copy thread stages unit i+1 (acquire + H2D into a
// depth-2 ring of device buffers) while the calling thread computes unit
// i — real transfer/compute overlap, the host realisation of the
// device's double-buffered copy engine. The kernel's dependency on its
// H2D (Task::deps) is honoured by the ring's producer/consumer order.
void run_lane_pipelined(RunContext& rc, int gpu,
                        const std::vector<std::size_t>& ids,
                        LaneStats& stats) {
  for (std::size_t id : ids) {
    const Task& t = rc.plan.tasks[id];
    if (t.kind == TaskKind::kH2D && !annotated(t)) {
      // No payload annotation means the kernel would read the shared
      // stream view, which the copy engine's next acquire invalidates —
      // overlap is impossible, run the lane sequentially instead.
      run_lane_sequential(rc, gpu, ids, stats);
      return;
    }
  }
  const auto units = split_units(rc.plan, ids);
  if (units.empty()) {
    stats.end = rc.clock.seconds();
    return;
  }

  DeviceBuffer ring[2];
  std::mutex mu;
  std::condition_variable cv;
  std::size_t staged_count = 0;
  std::size_t consumed = 0;
  CancelGroup& cg = rc.cg;

  // Wakes anyone blocked on the ring after cg.cancel flipped. The empty
  // lock section orders the flag write before the notify for waiters
  // that were between their predicate check and the sleep.
  auto wake_all = [&] {
    { std::lock_guard lock(mu); }
    cv.notify_all();
  };

  // Copy engine. Writes only the fetch/h2d stats fields; the compute
  // thread writes only the compute fields — disjoint members, and the
  // join below orders everything before the caller reads them. Any
  // failure (its own or the consumer's) drains through the cancel group:
  // both loops re-check cg at every ring-wait wakeup and unit boundary,
  // so neither side can strand the other on the condition variable.
  std::thread copy([&] {
    try {
      io::ShardStreamer::View view;
      [[maybe_unused]] bool have_view = false;
      for (std::size_t u = 0; u < units.size(); ++u) {
        {
          std::unique_lock lock(mu);
          cv.wait(lock, [&] {
            return staged_count - consumed < 2 || cg.cancelled();
          });
        }
        if (cg.cancelled()) {
          // The cancel may have been raised by *another* lane, whose
          // capture() never notifies this lane's cv: wake the consumer
          // (its predicate re-checks the flag) before bailing, or it
          // sleeps forever waiting for a unit that will never stage.
          wake_all();
          return;
        }
        AMPED_FAULT_POINT("host.copy");
        for (std::size_t id : units[u]) {
          Task& t = rc.plan.tasks[id];
          if (t.kind == TaskKind::kSpillFetch) {
            const double ts = trace_now(rc);
            WallTimer w;
            view = rc.plan.streamers[t.streamer]->acquire(t.stream_pos);
            have_view = true;
            const double el = w.seconds();
            stats.fetch += el;
            trace_op(rc, gpu, 1, sim::Phase::kHostCompute, ts, el,
                     "fetch pos" + std::to_string(t.stream_pos));
          } else if (t.kind == TaskKind::kH2D) {
            const double ts = trace_now(rc);
            WallTimer w;
            assert(have_view && "annotated H2D with no stream view");
            stage_counted(rc, view, t, ring[u % 2], stats);
            const double el = w.seconds();
            stats.h2d += el;
            trace_op(rc, gpu, 1, sim::Phase::kHostToDevice, ts, el,
                     h2d_label(t));
          }
        }
        {
          std::lock_guard lock(mu);
          ++staged_count;
        }
        cv.notify_all();
      }
    } catch (...) {
      cg.capture();
      wake_all();
    }
  });

  try {
    for (std::size_t u = 0; u < units.size(); ++u) {
      {
        std::unique_lock lock(mu);
        cv.wait(lock, [&] { return staged_count > u || cg.cancelled(); });
      }
      if (cg.cancelled()) {
        // Same cross-lane wakeup as in the copy engine: the flag may
        // have flipped without a notify on this lane's cv, and the join
        // below would otherwise wait on a copy thread that is blocked
        // waiting for ring space.
        wake_all();
        break;
      }
      AMPED_FAULT_POINT("host.lane");
      for (std::size_t id : units[u]) {
        Task& t = rc.plan.tasks[id];
        if (t.kind != TaskKind::kKernel) continue;
        const ExecContext ctx{rc.platform, gpu,
                              ring[u % 2].valid ? &ring[u % 2].view
                                                : nullptr};
        const double ts = trace_now(rc);
        WallTimer w;
        const double predicted = t.kernel(ctx);
        const double wall = w.seconds();
        stats.compute += wall;
        stats.predicted_compute += predicted;
        stats.scope_compute[t.scope] += wall;
        stats.scope_rows[t.scope] += t.owned_rows;
        kernel_seconds_hist().record_seconds(wall);
        trace_op(rc, gpu, 0, sim::Phase::kCompute, ts, wall,
                 kernel_label(t));
      }
      {
        std::lock_guard lock(mu);
        ++consumed;
      }
      cv.notify_all();
    }
  } catch (...) {
    // Before the cancel group, a kernel throw here escaped with the copy
    // thread still joinable — std::terminate. Capture, wake the copy
    // engine, and fall through to the join; flush rethrows after every
    // lane is down.
    cg.capture();
    wake_all();
  }
  copy.join();
  if (!cg.cancelled()) stats.end = rc.clock.seconds();
}

// Dynamic dispatch (plain and look-ahead): one worker thread per GPU
// pulls dispatch units from a shared cursor — the work queue is a real
// queue, so load balancing follows measured execution speed the same
// way the simulator's earliest-idle-clock dispatch follows modelled
// speed. Acquire + stage happen under the dispatch lock (streamer
// positions must be taken in order, and position p's view dies at
// acquire(p+1) — the lock serialises exactly that window); the kernel
// runs outside it.
void run_dynamic(RunContext& rc, const std::vector<std::size_t>& ids,
                 std::vector<LaneStats>& per_gpu) {
  Plan& plan = rc.plan;
  const int m = rc.platform.num_gpus();
  const auto units = split_units(plan, ids);

  bool all_annotated = true;
  for (std::size_t id : ids) {
    const Task& t = plan.tasks[id];
    if (t.kind == TaskKind::kH2D && !annotated(t)) all_annotated = false;
  }
  // Dispatch decisions are an observable the scheduler work cares about:
  // one counter per GPU, resolved once per segment (registration locks).
  std::vector<metrics::Counter*> units_dispatched;
  units_dispatched.reserve(static_cast<std::size_t>(m));
  for (int g = 0; g < m; ++g) {
    units_dispatched.push_back(&metrics::counter(
        "sched.host.units_dispatched.gpu" + std::to_string(g)));
  }

  if (!all_annotated || m <= 1 || host_parallelism() <= 1 ||
      units.size() <= 1) {
    // Serial fallback: units round-robin across GPUs so per-GPU
    // accounting still spreads (and unannotated kernels can read the
    // stream view without a racing acquire).
    for (std::size_t u = 0; u < units.size(); ++u) {
      units_dispatched[u % m]->inc();
      run_lane_sequential(rc, static_cast<int>(u % m), units[u],
                          per_gpu[u % m]);
    }
    return;
  }

  std::mutex dispatch;
  std::size_t next = 0;
  io::ShardStreamer::View shared_view;
  CancelGroup& cg = rc.cg;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(m));
  for (int g = 0; g < m; ++g) {
    workers.emplace_back([&, g] {
      auto& stats = per_gpu[static_cast<std::size_t>(g)];
      try {
        DeviceBuffer staged;
        std::vector<unsigned char> bounce_src, bounce_dst;
        bool ran = false;
        for (;;) {
          std::size_t u;
          {
            std::unique_lock lock(dispatch);
            // A failed worker cancels the queue: siblings stop pulling
            // units, join below, and the earliest error is rethrown.
            if (next == units.size() || cg.cancelled()) break;
            u = next++;
            AMPED_FAULT_POINT("host.worker");
            units_dispatched[static_cast<std::size_t>(g)]->inc();
            for (std::size_t id : units[u]) {
              Task& t = plan.tasks[id];
              if (t.kind == TaskKind::kSpillFetch) {
                const double ts = trace_now(rc);
                WallTimer w;
                shared_view = plan.streamers[t.streamer]->acquire(
                    t.stream_pos);
                const double el = w.seconds();
                stats.fetch += el;
                trace_op(rc, g, 0, sim::Phase::kHostCompute, ts, el,
                         "fetch pos" + std::to_string(t.stream_pos));
              } else if (t.kind == TaskKind::kH2D) {
                const double ts = trace_now(rc);
                WallTimer w;
                stage_counted(rc, shared_view, t, staged, stats);
                const double el = w.seconds();
                stats.h2d += el;
                trace_op(rc, g, 0, sim::Phase::kHostToDevice, ts, el,
                         h2d_label(t));
              }
            }
          }
          ran = true;
          for (std::size_t id : units[u]) {
            Task& t = plan.tasks[id];
            if (t.kind == TaskKind::kD2H) {
              const double ts = trace_now(rc);
              WallTimer w;
              bounce_src.resize(t.transfer_bytes);
              bounce_dst.resize(t.transfer_bytes);
              if (t.transfer_bytes) {
                std::memcpy(bounce_dst.data(), bounce_src.data(),
                            t.transfer_bytes);
              }
              const double el = w.seconds();
              stats.d2h += el;
              trace_op(rc, g, 0, sim::Phase::kDeviceToHost, ts, el,
                       "d2h scope" + std::to_string(t.scope));
            } else if (t.kind == TaskKind::kKernel) {
              const ExecContext ctx{rc.platform, g,
                                    staged.valid ? &staged.view : nullptr};
              const double ts = trace_now(rc);
              WallTimer w;
              const double predicted = t.kernel(ctx);
              const double wall = w.seconds();
              stats.compute += wall;
              stats.predicted_compute += predicted;
              stats.scope_compute[t.scope] += wall;
              stats.scope_rows[t.scope] += t.owned_rows;
              kernel_seconds_hist().record_seconds(wall);
              trace_op(rc, g, 0, sim::Phase::kCompute, ts, wall,
                       kernel_label(t));
            }
          }
        }
        if (ran && !cg.cancelled()) stats.end = rc.clock.seconds();
      } catch (...) {
        cg.capture();
      }
    });
  }
  for (auto& w : workers) w.join();
}

// Dependency-driven executor for graph-scheduled plans (Plan::graph):
// one thread per GPU lane runs that lane's tasks in lane order, and one
// collective-engine thread runs the gather and host-op tasks in plan
// order. Cross-thread edges (a kernel waiting on the previous link's
// gather/solve, a gather waiting on its producer kernels) synchronise on
// per-task completion flags — so tensor A's next mode starts the moment
// its own factors land, while tensor B's lanes keep streaming.
//
// Streamer order is safe without a dispatch lock: every streamer belongs
// to exactly one (chain, link, GPU) lane, and that lane's tasks run on
// one thread in lane order.
void run_plan_graph_host(RunContext& rc, ExecReport& report) {
  Plan& plan = rc.plan;
  const int m = rc.platform.num_gpus();
  const std::size_t scopes = plan.num_scopes();

  std::vector<char> done(plan.tasks.size(), 0);
  std::mutex mu;
  std::condition_variable cv;
  CancelGroup& cg = rc.cg;

  auto mark_done = [&](std::size_t id) {
    {
      std::lock_guard lock(mu);
      done[id] = 1;
    }
    cv.notify_all();
  };
  // Blocks until every dep has completed (same-lane deps are done by lane
  // order; this really waits on cross-thread edges). False = cancelled.
  auto wait_deps = [&](const std::vector<std::size_t>& deps) {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] {
      if (cg.cancelled()) return true;
      for (const std::size_t d : deps) {
        if (!done[d]) return false;
      }
      return true;
    });
    return !cg.cancelled();
  };

  std::vector<std::vector<std::size_t>> lanes(static_cast<std::size_t>(m));
  std::vector<std::size_t> globals;  // gathers + host ops, plan order
  for (std::size_t id = 0; id < plan.tasks.size(); ++id) {
    const Task& t = plan.tasks[id];
    if (t.kind == TaskKind::kAllGather || t.kind == TaskKind::kHostOp) {
      globals.push_back(id);
    } else {
      assert(t.kind != TaskKind::kBarrier && "graph plans carry no barriers");
      assert(t.gpu >= 0 && t.gpu < m && "graph lanes must be static");
      lanes[static_cast<std::size_t>(t.gpu)].push_back(id);
    }
  }

  std::vector<LaneStats> stats(static_cast<std::size_t>(m));
  for (auto& s : stats) {
    s.scope_compute.assign(scopes, 0.0);
    s.scope_rows.assign(scopes, 0);
    s.scope_start.assign(scopes, -1.0);
    s.scope_finish.assign(scopes, -1.0);
  }
  // Rows each lane's kernels have produced per scope, read by the gather
  // thread once the producer kernels' done flags are up (the mark_done /
  // wait_deps lock pair orders the writes before the read).
  std::vector<std::vector<std::uint64_t>> rows_live(
      scopes, std::vector<std::uint64_t>(static_cast<std::size_t>(m), 0));

  auto run_lane = [&](int g) {
    auto& ls = stats[static_cast<std::size_t>(g)];
    io::ShardStreamer::View view;
    bool have_view = false;
    DeviceBuffer staged;
    std::vector<unsigned char> bounce_src, bounce_dst;
    for (std::size_t id : lanes[static_cast<std::size_t>(g)]) {
      if (cg.cancelled()) return;
      AMPED_FAULT_POINT("host.lane");
      Task& t = plan.tasks[id];
      switch (t.kind) {
        case TaskKind::kSpillFetch: {
          const double ts = trace_now(rc);
          WallTimer w;
          view = plan.streamers[t.streamer]->acquire(t.stream_pos);
          have_view = true;
          const double el = w.seconds();
          ls.fetch += el;
          trace_op(rc, g, 1, sim::Phase::kHostCompute, ts, el,
                   "fetch pos" + std::to_string(t.stream_pos));
          break;
        }
        case TaskKind::kH2D: {
          const double ts = trace_now(rc);
          WallTimer w;
          if (annotated(t)) {
            assert(have_view && "annotated H2D with no stream view");
            stage_counted(rc, view, t, staged, ls);
          } else {
            staged.valid = false;
            ls.predicted_h2d += rc.platform.h2d_seconds(t.transfer_bytes);
            ls.predicted_h2d_fluid +=
                rc.platform.h2d_seconds(t.transfer_bytes, 1);
          }
          const double el = w.seconds();
          ls.h2d += el;
          trace_op(rc, g, 1, sim::Phase::kHostToDevice, ts, el, h2d_label(t));
          break;
        }
        case TaskKind::kD2H: {
          const double ts = trace_now(rc);
          WallTimer w;
          bounce_src.resize(t.transfer_bytes);
          bounce_dst.resize(t.transfer_bytes);
          if (t.transfer_bytes) {
            std::memcpy(bounce_dst.data(), bounce_src.data(),
                        t.transfer_bytes);
          }
          const double el = w.seconds();
          ls.d2h += el;
          trace_op(rc, g, 0, sim::Phase::kDeviceToHost, ts, el,
                   "d2h scope" + std::to_string(t.scope));
          break;
        }
        case TaskKind::kKernel: {
          // The cross-link edge: block until the previous link's gather /
          // solve has published the factor this grid reads.
          if (!wait_deps(t.deps)) return;
          const ExecContext ctx{rc.platform, g,
                                staged.valid ? &staged.view
                                             : (have_view ? &view : nullptr)};
          const double ts = trace_now(rc);
          const double span_start = rc.clock.seconds();
          WallTimer w;
          const double predicted = t.kernel(ctx);
          const double wall = w.seconds();
          ls.compute += wall;
          ls.predicted_compute += predicted;
          ls.scope_compute[t.scope] += wall;
          ls.scope_rows[t.scope] += t.owned_rows;
          rows_live[t.scope][static_cast<std::size_t>(g)] += t.owned_rows;
          if (ls.scope_start[t.scope] < 0.0) {
            ls.scope_start[t.scope] = span_start;
          }
          ls.scope_finish[t.scope] = span_start + wall;
          kernel_seconds_hist().record_seconds(wall);
          trace_op(rc, g, 0, sim::Phase::kCompute, ts, wall, kernel_label(t));
          break;
        }
        default:
          assert(false && "global task on a graph lane");
      }
      mark_done(id);
    }
    ls.end = rc.clock.seconds();
  };

  auto run_globals = [&] {
    for (std::size_t id : globals) {
      Task& t = plan.tasks[id];
      if (!wait_deps(t.deps)) return;
      if (t.kind == TaskKind::kAllGather) {
        // Factor mirrors are shared host memory: the gather contributes
        // its edge and its books, not a copy (see the phase path below).
        const double ts = trace_now(rc);
        const double start = rc.clock.seconds();
        WallTimer w;
        std::uint64_t part_total = 0;
        for (int g = 0; g < m; ++g) {
          part_total +=
              rows_live[t.scope][static_cast<std::size_t>(g)] * t.row_bytes;
        }
        const std::uint64_t bytes =
            m <= 1 ? 0
                   : (t.allgather == AllGatherAlgo::kHostStaged
                          ? part_total * (1 + static_cast<std::uint64_t>(m))
                          : part_total * static_cast<std::uint64_t>(m - 1));
        const double el = w.seconds();
        report.wall_allgather += el;
        report.gather_edges.push_back(
            ExecReport::GatherEdge{.scope = t.scope,
                                   .mode = t.mode,
                                   .bytes = bytes,
                                   .seconds = el,
                                   .start = start,
                                   .finish = start + el});
        trace_op(rc, -1, 1, sim::Phase::kPeerToPeer, ts, el,
                 "gather-edge scope" + std::to_string(t.scope) + " mode" +
                     std::to_string(t.mode));
      } else {
        const double ts = trace_now(rc);
        WallTimer w;
        t.host_op(rc.platform);
        const double el = w.seconds();
        report.wall_host_op += el;
        trace_op(rc, -1, 0, sim::Phase::kHostCompute, ts, el, "host op");
      }
      mark_done(id);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(m) + 1);
  for (int g = 0; g < m; ++g) {
    if (lanes[static_cast<std::size_t>(g)].empty()) continue;
    threads.emplace_back([&, g] {
      try {
        run_lane(g);
      } catch (...) {
        cg.capture();
        cv.notify_all();
      }
    });
  }
  threads.emplace_back([&] {
    try {
      run_globals();
    } catch (...) {
      cg.capture();
      cv.notify_all();
    }
  });
  for (auto& th : threads) th.join();
  cg.rethrow_if_any();

  const double flush_end = rc.clock.seconds();
  report.scope_kernel_start.assign(scopes, -1.0);
  report.scope_kernel_finish.assign(scopes, -1.0);
  for (int g = 0; g < m; ++g) {
    const auto& s = stats[static_cast<std::size_t>(g)];
    const auto gi = static_cast<std::size_t>(g);
    report.per_gpu_compute[gi] += s.compute;
    report.per_gpu_predicted_compute[gi] += s.predicted_compute;
    report.wall_spill_fetch += s.fetch;
    report.wall_h2d += s.h2d;
    report.wall_d2h += s.d2h;
    report.predicted_h2d += s.predicted_h2d;
    report.predicted_h2d_fluid += s.predicted_h2d_fluid;
    for (std::size_t sc = 0; sc < scopes; ++sc) {
      report.scope_gpu_compute[sc][gi] += s.scope_compute[sc];
      report.scope_owned_rows[sc][gi] += s.scope_rows[sc];
      if (s.scope_start[sc] >= 0.0 &&
          (report.scope_kernel_start[sc] < 0.0 ||
           s.scope_start[sc] < report.scope_kernel_start[sc])) {
        report.scope_kernel_start[sc] = s.scope_start[sc];
      }
      report.scope_kernel_finish[sc] =
          std::max(report.scope_kernel_finish[sc], s.scope_finish[sc]);
    }
    if (s.end >= 0.0) {
      report.wall_sync += std::max(0.0, flush_end - s.end);
    }
  }
}

}  // namespace

ExecReport run_plan_host_parallel(sim::Platform& platform, Plan& plan) {
  const int m = platform.num_gpus();
  const std::size_t scopes = plan.num_scopes();
  ExecReport report;
  report.per_gpu_compute.assign(static_cast<std::size_t>(m), 0.0);
  report.per_gpu_predicted_compute.assign(static_cast<std::size_t>(m), 0.0);
  report.scope_gpu_compute.assign(
      scopes, std::vector<double>(static_cast<std::size_t>(m), 0.0));
  report.scope_owned_rows.assign(
      scopes, std::vector<std::uint64_t>(static_cast<std::size_t>(m), 0));

  const WallTimer run_clock;
  CancelGroup cg;
  std::atomic<int> streaming_lanes{0};
  RunContext rc{platform, plan,           run_clock,
                cg,       platform.trace(), streaming_lanes};

  if (plan.graph) {
    run_plan_graph_host(rc, report);
    report.wall_seconds = run_clock.seconds();
    return report;
  }

  auto make_stats = [&] {
    LaneStats s;
    s.scope_compute.assign(scopes, 0.0);
    s.scope_rows.assign(scopes, 0);
    return s;
  };

  // Folds one joined lane's books into the report; `flush_end` converts
  // the lane's finish offset into its barrier stall.
  auto merge = [&](int gpu, const LaneStats& s, double flush_end) {
    const auto g = static_cast<std::size_t>(gpu);
    report.per_gpu_compute[g] += s.compute;
    report.per_gpu_predicted_compute[g] += s.predicted_compute;
    report.wall_spill_fetch += s.fetch;
    report.wall_h2d += s.h2d;
    report.wall_d2h += s.d2h;
    report.predicted_h2d += s.predicted_h2d;
    report.predicted_h2d_fluid += s.predicted_h2d_fluid;
    for (std::size_t sc = 0; sc < scopes; ++sc) {
      report.scope_gpu_compute[sc][g] += s.scope_compute[sc];
      report.scope_owned_rows[sc][g] += s.scope_rows[sc];
    }
    if (s.end >= 0.0) {
      report.wall_sync += std::max(0.0, flush_end - s.end);
    }
  };

  std::vector<std::size_t> segment;
  auto flush = [&] {
    if (segment.empty()) return;
    if (plan.tasks[segment.front()].gpu == kAnyGpu) {
      // Both dynamic disciplines realise as the shared unit queue: the
      // look-ahead variant's copy/compute overlap emerges from worker g
      // staging its next unit while worker h computes.
      std::vector<LaneStats> per_gpu(static_cast<std::size_t>(m),
                                     make_stats());
      try {
        run_dynamic(rc, segment, per_gpu);
      } catch (...) {
        // Serial-fallback errors arrive synchronously; route them through
        // the cancel group so every failure exits the same way.
        cg.capture();
      }
      cg.rethrow_if_any();
      const double flush_end = run_clock.seconds();
      for (int g = 0; g < m; ++g) {
        merge(g, per_gpu[static_cast<std::size_t>(g)], flush_end);
      }
      segment.clear();
      return;
    }
    std::vector<std::vector<std::size_t>> lanes(static_cast<std::size_t>(m));
    for (std::size_t id : segment) {
      const int gpu = plan.tasks[id].gpu;
      assert(gpu >= 0 && gpu < m && "mixed dynamic/static segment");
      lanes[static_cast<std::size_t>(gpu)].push_back(id);
    }
    std::vector<int> active;
    for (int g = 0; g < m; ++g) {
      if (!lanes[static_cast<std::size_t>(g)].empty()) active.push_back(g);
    }
    std::vector<LaneStats> stats(active.size(), make_stats());
    auto run_lane = [&](std::size_t i) {
      const int g = active[i];
      const auto& ids = lanes[static_cast<std::size_t>(g)];
      if (plan.pipelined) {
        run_lane_pipelined(rc, g, ids, stats[i]);
      } else {
        run_lane_sequential(rc, g, ids, stats[i]);
      }
    };
    if (plan.parallel_lanes && active.size() > 1 && host_parallelism() > 1) {
      // Dedicated threads, not the global pool: lane bodies block (a
      // streamer acquire waits on pool read-ahead tasks) and pipelined
      // lanes spawn their own copy engines; keeping lanes off the pool
      // leaves it free to be the streamers' read-ahead executor.
      std::vector<std::thread> threads;
      threads.reserve(active.size());
      for (std::size_t i = 0; i < active.size(); ++i) {
        threads.emplace_back([&, i] {
          try {
            run_lane(i);
          } catch (...) {
            rc.cg.capture();
          }
        });
      }
      for (auto& t : threads) t.join();
    } else {
      for (std::size_t i = 0; i < active.size(); ++i) {
        try {
          run_lane(i);
        } catch (...) {
          rc.cg.capture();
          break;
        }
      }
    }
    cg.rethrow_if_any();
    const double flush_end = run_clock.seconds();
    for (std::size_t i = 0; i < active.size(); ++i) {
      merge(active[i], stats[i], flush_end);
    }
    segment.clear();
  };

  for (std::size_t id = 0; id < plan.tasks.size(); ++id) {
    Task& t = plan.tasks[id];
    switch (t.kind) {
      case TaskKind::kBarrier: {
        // Joining the lane threads in flush() IS the barrier.
        const double ts = trace_now(rc);
        WallTimer w;
        flush();
        trace_op(rc, -1, 0, sim::Phase::kSync, ts, w.seconds(), "barrier");
        break;
      }
      case TaskKind::kAllGather: {
        flush();
        // Factor mirrors are shared host memory, so there is nothing to
        // exchange — the task contributes its ordering edge (after the
        // barrier, before the next segment) and its measured cost. A
        // device port replaces this branch with real peer copies sized
        // scope_owned_rows[scope][g] * row_bytes, like the simulator.
        const double ts = trace_now(rc);
        const double start = run_clock.seconds();
        WallTimer w;
        std::uint64_t part_total = 0;
        for (int g = 0; g < m; ++g) {
          part_total +=
              report.scope_owned_rows[t.scope][static_cast<std::size_t>(g)] *
              t.row_bytes;
        }
        const std::uint64_t bytes =
            m <= 1 ? 0
                   : (t.allgather == AllGatherAlgo::kHostStaged
                          ? part_total * (1 + static_cast<std::uint64_t>(m))
                          : part_total * static_cast<std::uint64_t>(m - 1));
        const double el = w.seconds();
        report.wall_allgather += el;
        report.gather_edges.push_back(
            ExecReport::GatherEdge{.scope = t.scope,
                                   .mode = t.mode,
                                   .bytes = bytes,
                                   .seconds = el,
                                   .start = start,
                                   .finish = start + el});
        trace_op(rc, -1, 0, sim::Phase::kPeerToPeer, ts, el,
                 "allgather scope" + std::to_string(t.scope));
        break;
      }
      case TaskKind::kHostOp: {
        flush();
        const double ts = trace_now(rc);
        WallTimer w;
        t.host_op(platform);
        const double el = w.seconds();
        report.wall_host_op += el;
        trace_op(rc, -1, 0, sim::Phase::kHostCompute, ts, el, "host op");
        break;
      }
      default:
        segment.push_back(id);
    }
  }
  flush();
  report.wall_seconds = run_clock.seconds();
  return report;
}

}  // namespace amped::exec
