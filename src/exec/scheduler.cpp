#include "exec/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "core/ec_kernel.hpp"
#include "core/kernel_cache.hpp"
#include "sim/executor.hpp"

namespace amped::exec {

namespace {

// Nonzeros per ISP on a device with `sm_count` SMs: the explicit option,
// or the paper's t_{d,j} = |TS_{d,j}| / g (§3.2) floored at the
// threadblock width.
nnz_t resolve_isp_size(const MttkrpOptions& options, nnz_t shard_nnz,
                       int sm_count) {
  if (options.isp_size != 0) return options.isp_size;
  return std::max<nnz_t>(options.block_width,
                         (shard_nnz + sm_count - 1) /
                             static_cast<nnz_t>(sm_count));
}

// Kernel closure for one AMPED shard: runs the real EC arithmetic over
// the shard's ISPs (through the view the lane's SpillFetch produced) and
// prices the grid on the executing device — which is only known at run
// time under dynamic dispatch, hence the ExecContext indirection.
KernelFn make_shard_kernel(const ModeLowerInput& in, const Shard* shard) {
  const AmpedTensor::ModeCopy* copy = &in.tensor.mode_copy(in.mode);
  const MttkrpOptions* options = &in.options;
  const FactorSet* factors = &in.factors;
  DenseMatrix* out = &in.out;
  const sim::KernelProfile profile = in.profile;
  const std::size_t num_modes = in.tensor.num_modes();
  // The kernel shape is fixed at plan-lowering time — resolve the tile
  // program once here, so shard executions (and replays under dynamic
  // dispatch) skip even the kernel-cache lookup.
  const KernelShape shape = KernelShape::of(num_modes, in.factors.rank(),
                                            BlockOrder::kOutputSorted);
  const TileProgram* program = &KernelCache::global().find_or_create(shape);
  return [=](const ExecContext& ctx) -> double {
    const auto& device = ctx.platform.gpu(ctx.gpu);
    const int sm_count = device.spec().sm_count;
    const nnz_t isp_size = resolve_isp_size(*options, shard->nnz(), sm_count);
    // Element n of the sorted copy lives at view index n - base whether
    // the view is the resident copy itself or a stream buffer, so both
    // sources run the same arithmetic in the same order (bit-identical).
    const nnz_t shard_base = shard->nnz_begin - ctx.view->base;
    // Arithmetic once over the whole shard: the accumulation grouping is
    // then independent of which device the grid lands on, so a dynamic
    // assignment that diverges between backends (real wall clock vs
    // simulated clock picking different GPUs) still produces
    // memcmp-identical output. The executing device only *prices* the
    // grid — its sm_count shapes the ISP split below, whose stats come
    // from an index-only rescan rather than the arithmetic pass.
    run_ec_block(*program, *ctx.view->data, shard_base,
                 shard_base + static_cast<nnz_t>(shard->nnz()),
                 copy->partition.mode, *factors, *out);
    const index_t* out_idx =
        ctx.view->data->indices(copy->partition.mode).data();
    std::vector<double> block_seconds;
    for (auto [lo, hi] : split_isps(*shard, isp_size)) {
      // Mode copies are output-sorted, so the sorted stats fast path holds.
      RunStatsAccumulator acc(shape);
      for (nnz_t n = shard_base + lo; n < shard_base + hi; ++n) {
        acc.feed(out_idx[n]);
      }
      const auto stats =
          acc.finish(static_cast<std::size_t>(options->block_width));
      block_seconds.push_back(
          ctx.platform.cost_model(ctx.gpu).ec_block_seconds(stats, profile));
    }
    return ctx.platform.kernel_launch_seconds() +
           sim::grid_makespan(block_seconds, sm_count);
  };
}

// Shard source for one fetch order: a pass-through over the resident
// copy, or a double-buffered disk stream when the mode copy is spilled.
std::unique_ptr<io::ShardStreamer> make_streamer(
    const AmpedTensor::ModeCopy& copy, std::span<const std::size_t> ids) {
  if (!copy.spilled()) {
    return std::make_unique<io::ShardStreamer>(copy.tensor);
  }
  std::vector<std::pair<nnz_t, nnz_t>> ranges;
  ranges.reserve(ids.size());
  for (std::size_t id : ids) {
    const auto& shard = copy.partition.shards[id];
    ranges.emplace_back(shard.nnz_begin, shard.nnz_end);
  }
  return std::make_unique<io::ShardStreamer>(*copy.spill, std::move(ranges));
}

// Appends the fetch -> transfer -> grid task chain for one shard.
void append_shard_tasks(Plan& plan, const ModeLowerInput& in, int gpu,
                        std::size_t streamer, std::size_t stream_pos,
                        std::size_t shard_id, bool pipelined) {
  const auto& copy = in.tensor.mode_copy(in.mode);
  const Shard* shard = &copy.partition.shards[shard_id];
  const std::uint64_t payload =
      shard->nnz() * static_cast<std::uint64_t>(in.tensor.bytes_per_nnz());

  Task fetch;
  fetch.kind = TaskKind::kSpillFetch;
  fetch.gpu = gpu;
  fetch.streamer = streamer;
  fetch.stream_pos = stream_pos;
  plan.tasks.push_back(std::move(fetch));
  const std::size_t fetch_id = plan.tasks.size() - 1;

  Task h2d;
  h2d.kind = TaskKind::kH2D;
  h2d.gpu = gpu;
  h2d.transfer_bytes = payload;
  // The host backend stages exactly these elements out of the stream
  // view (a real copy); the simulator only prices transfer_bytes.
  h2d.payload_begin = shard->nnz_begin;
  h2d.payload_end = shard->nnz_end;
  // The sequential engine tracks the staging buffer on the device memory
  // meter; the pipelined engine (like the pre-engine loop) charges only
  // time, its two staging buffers being a constant.
  h2d.alloc_bytes = pipelined ? 0 : payload;
  h2d.deps = {fetch_id};
  plan.tasks.push_back(std::move(h2d));
  const std::size_t h2d_id = plan.tasks.size() - 1;

  Task kernel;
  kernel.kind = TaskKind::kKernel;
  kernel.gpu = gpu;
  kernel.kernel = make_shard_kernel(in, shard);
  kernel.free_bytes = pipelined ? 0 : payload;
  kernel.owned_rows = shard->index_count();
  kernel.labelled = true;
  kernel.mode = copy.partition.mode;
  kernel.index_begin = shard->index_begin;
  kernel.index_end = shard->index_end;
  kernel.deps = {h2d_id};
  plan.tasks.push_back(std::move(kernel));
}

void append_mode_epilogue(Plan& plan, const ModeLowerInput& in) {
  Task barrier;  // Algorithm 1 line 9: inter-GPU barrier
  barrier.kind = TaskKind::kBarrier;
  plan.tasks.push_back(std::move(barrier));

  Task gather;  // Algorithm 1 line 11: all-gather the updated factor rows
  gather.kind = TaskKind::kAllGather;
  gather.allgather = in.options.allgather;
  gather.row_bytes = in.factors.rank() * sizeof(value_t);
  gather.mode = in.mode;  // gather-edge reporting names its output mode
  plan.tasks.push_back(std::move(gather));
}

// Lowers a fixed shard -> GPU assignment: one lane per GPU, each with its
// own streamer (independent read-ahead when the copy is spilled).
// Every mode plan updates all rows of its output matrix: the scope that
// lets compose() prove disjointness across tensors (different outputs)
// or across row-partitioned work on one output.
RowScope mode_scope(const ModeLowerInput& in) {
  return RowScope{&in.out, 0, static_cast<index_t>(in.out.rows())};
}

Plan lower_static(const ModeLowerInput& in, const ShardAssignment& assignment,
                  bool pipelined, std::string name) {
  const auto& copy = in.tensor.mode_copy(in.mode);
  Plan plan;
  plan.scheduler = std::move(name);
  plan.mode = in.mode;
  plan.scopes = {mode_scope(in)};
  plan.pipelined = pipelined;
  // Shards of one mode own disjoint output rows, so lanes may run
  // concurrently on the host pool.
  plan.parallel_lanes = true;
  for (std::size_t g = 0; g < assignment.per_gpu.size(); ++g) {
    const auto& ids = assignment.per_gpu[g];
    if (ids.empty()) continue;
    plan.streamers.push_back(make_streamer(copy, ids));
    const std::size_t streamer = plan.streamers.size() - 1;
    for (std::size_t pos = 0; pos < ids.size(); ++pos) {
      append_shard_tasks(plan, in, static_cast<int>(g), streamer, pos,
                         ids[pos], pipelined);
    }
  }
  append_mode_epilogue(plan, in);
  return plan;
}

// Inverse-throughput GPU weights for the weighted-static policy: the full
// per-nonzero cost of streaming an element over the (device-independent)
// host link plus executing it at the device's bandwidth. Weighting by
// device bandwidth alone overloads fast GPUs whenever H2D dominates.
std::vector<double> throughput_weights(const ModeLowerInput& in) {
  const int m = in.platform.num_gpus();
  const double bytes_per_elem =
      static_cast<double>(in.tensor.bytes_per_nnz());
  const double h2d_per_byte =
      (in.platform.h2d_seconds(1u << 30) - in.platform.h2d_seconds(0)) /
      static_cast<double>(1u << 30);
  std::vector<double> weights(static_cast<std::size_t>(m));
  for (int g = 0; g < m; ++g) {
    const auto& cm = in.platform.cost_model(g);
    const double ec_per_elem =
        cm.bytes_per_nnz(in.tensor.num_modes(), in.factors.rank(),
                         in.profile) /
        cm.spec().mem_bandwidth;
    weights[static_cast<std::size_t>(g)] =
        1.0 / (bytes_per_elem * h2d_per_byte + ec_per_elem);
  }
  return weights;
}

// Device-independent run structure of one shard: exact from one scan of
// the resident sorted copy, or from the run-stats segment persisted in
// the spill file at spill time. Only a spilled copy whose file predates
// the segment (or whose partition no longer matches) falls back to the
// index-width approximation — persisted stats mean no disk reads at
// schedule time either way.
ShardRunStats shard_run_stats(const ModeLowerInput& in, const Shard& shard) {
  ShardRunStats stats;
  if (shard.nnz() == 0) return stats;
  const auto& copy = in.tensor.mode_copy(in.mode);
  if (!copy.spilled()) {
    return compute_shard_run_stats(copy.tensor.indices(copy.partition.mode),
                                   shard);
  }
  const auto records = copy.spill->shard_run_stats();
  const auto it = std::lower_bound(
      records.begin(), records.end(),
      static_cast<std::uint64_t>(shard.nnz_begin),
      [](const io::ShardRunStatsRecord& r, std::uint64_t begin) {
        return r.nnz_begin < begin;
      });
  if (it != records.end() && it->nnz_begin == shard.nnz_begin &&
      it->nnz_end == shard.nnz_end) {
    stats.runs = static_cast<nnz_t>(it->runs);
    stats.max_run = static_cast<nnz_t>(it->max_run);
    return stats;
  }
  const nnz_t width = std::max<index_t>(1, shard.index_count());
  stats.runs = std::min<nnz_t>(shard.nnz(), width);
  stats.max_run = (shard.nnz() + width - 1) / width;
  return stats;
}

// Simulated seconds for one shard on one device: H2D of the payload plus
// the grid under that device's roofline and ISP geometry. The transfer
// leg is priced at the fluid share for `streaming_lanes` concurrent
// streams (<= 0 keeps the legacy static all-lanes share).
double estimate_with_stats(const ModeLowerInput& in, const Shard& shard,
                           const ShardRunStats& run_stats, int gpu,
                           int streaming_lanes = -1) {
  const auto& cost = in.platform.cost_model(gpu);
  const std::uint64_t payload =
      shard.nnz() * static_cast<std::uint64_t>(in.tensor.bytes_per_nnz());
  const double seconds =
      in.platform.h2d_seconds(payload, streaming_lanes) +
      in.platform.kernel_launch_seconds();
  if (shard.nnz() == 0) return seconds;

  const int sm_count = cost.spec().sm_count;
  const nnz_t isp_size = resolve_isp_size(in.options, shard.nnz(), sm_count);
  const nnz_t blocks = (shard.nnz() + isp_size - 1) / isp_size;
  sim::EcBlockStats stats;
  stats.nnz = (shard.nnz() + blocks - 1) / blocks;
  stats.output_runs = std::max<nnz_t>(1, run_stats.runs / blocks);
  stats.max_run = std::min<nnz_t>(run_stats.max_run, stats.nnz);
  stats.max_multiplicity = stats.max_run;  // output-sorted copy
  stats.modes = in.tensor.num_modes();
  stats.rank = in.factors.rank();
  stats.block_width = static_cast<std::size_t>(in.options.block_width);
  const double block_seconds = cost.ec_block_seconds(stats, in.profile);
  // List-scheduled equal blocks finish in ~max(1, blocks/SMs) block
  // times; the continuous ratio avoids charging a whole extra wave when
  // one partial block spills past the SM count.
  const double waves = std::max(
      1.0, static_cast<double>(blocks) / static_cast<double>(sm_count));
  return seconds + waves * block_seconds;
}

class StaticScheduler : public Scheduler {
 public:
  StaticScheduler(SchedulingPolicy policy, bool pipelined)
      : policy_(policy), pipelined_(pipelined) {}

  std::string name() const override {
    return to_string(policy_) + (pipelined_ ? "+pipelined" : "");
  }

  Plan lower(const ModeLowerInput& in) const override {
    return lower_static(in, assign(in), pipelined_, name());
  }

 protected:
  virtual ShardAssignment assign(const ModeLowerInput& in) const {
    return assign_shards(in.tensor.mode_copy(in.mode).partition,
                         in.platform.num_gpus(), policy_);
  }

 private:
  SchedulingPolicy policy_;
  bool pipelined_;
};

class WeightedStaticScheduler : public StaticScheduler {
 public:
  explicit WeightedStaticScheduler(bool pipelined)
      : StaticScheduler(SchedulingPolicy::kWeightedStatic, pipelined) {}

 protected:
  ShardAssignment assign(const ModeLowerInput& in) const override {
    return assign_shards_weighted(in.tensor.mode_copy(in.mode).partition,
                                  throughput_weights(in));
  }
};

// The new policy: LPT on per-shard, per-device *seconds* from the cost
// model. Unlike weighted-static (one scalar weight per GPU applied to
// nonzero counts), every (shard, GPU) pair is priced individually — the
// shard's run structure meets the device's roofline and ISP geometry, so
// heterogeneous SM counts and bandwidths balance at shard granularity.
class CostModelScheduler : public StaticScheduler {
 public:
  explicit CostModelScheduler(bool pipelined)
      : StaticScheduler(SchedulingPolicy::kCostModel, pipelined) {}

 protected:
  ShardAssignment assign(const ModeLowerInput& in) const override {
    const auto& partition = in.tensor.mode_copy(in.mode).partition;
    const std::size_t m =
        static_cast<std::size_t>(in.platform.num_gpus());
    const std::size_t n = partition.shards.size();

    // Price every shard on every device: one run-structure scan per
    // shard (device-independent), then a per-device roofline estimate.
    // H2D legs use the fluid share for the lanes this assignment can
    // actually keep streaming at once — fewer shards than GPUs means
    // fewer concurrent streams than the static all-lanes share assumes.
    const int lanes = static_cast<int>(std::min(m, std::max<std::size_t>(n, 1)));
    std::vector<double> est(n * m);
    std::vector<double> worst(n, 0.0);  // slowest-device seconds per shard
    for (std::size_t id = 0; id < n; ++id) {
      const auto run_stats = shard_run_stats(in, partition.shards[id]);
      for (std::size_t g = 0; g < m; ++g) {
        const double e = estimate_with_stats(in, partition.shards[id],
                                             run_stats,
                                             static_cast<int>(g), lanes);
        est[id * m + g] = e;
        worst[id] = std::max(worst[id], e);
      }
    }

    // LPT on estimated seconds (slowest-device cost, the standard key
    // for unrelated machines): heaviest shard first, each to the GPU
    // that finishes it earliest (ties to the lowest GPU id).
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return worst[a] > worst[b];
                     });
    ShardAssignment out;
    out.per_gpu.resize(m);
    std::vector<double> load(m, 0.0);
    for (std::size_t id : order) {
      std::size_t best = 0;
      double best_finish = load[0] + est[id * m];
      for (std::size_t g = 1; g < m; ++g) {
        const double f = load[g] + est[id * m + g];
        if (f < best_finish) {
          best_finish = f;
          best = g;
        }
      }
      out.per_gpu[best].push_back(id);
      load[best] = best_finish;
    }
    // Execute each GPU's shards in index order for stream friendliness.
    for (auto& list : out.per_gpu) std::sort(list.begin(), list.end());
    return out;
  }
};

class DynamicQueueScheduler : public Scheduler {
 public:
  // lookahead = false is the paper's dynamic load balancing: one queue,
  // earliest-idle GPU, sequential streaming. lookahead = true keeps the
  // single queue but marks the plan pipelined, which the executor runs
  // with per-GPU copy engines: shard i+1's H2D streams while shard i's
  // grid computes (kDynamicLookahead).
  explicit DynamicQueueScheduler(bool lookahead = false)
      : lookahead_(lookahead) {}

  std::string name() const override {
    return to_string(lookahead_ ? SchedulingPolicy::kDynamicLookahead
                                : SchedulingPolicy::kDynamicQueue);
  }

  // Shards leave one queue in index order regardless of which GPU takes
  // them: every task carries kAnyGpu and one streamer spans the whole
  // dispatch order.
  Plan lower(const ModeLowerInput& in) const override {
    const auto& copy = in.tensor.mode_copy(in.mode);
    Plan plan;
    plan.scheduler = name();
    plan.mode = in.mode;
    plan.scopes = {mode_scope(in)};
    plan.pipelined = lookahead_;
    std::vector<std::size_t> all_ids(copy.partition.shards.size());
    std::iota(all_ids.begin(), all_ids.end(), std::size_t{0});
    plan.streamers.push_back(make_streamer(copy, all_ids));
    for (std::size_t s = 0; s < all_ids.size(); ++s) {
      append_shard_tasks(plan, in, kAnyGpu, 0, s, all_ids[s],
                         /*pipelined=*/lookahead_);
    }
    append_mode_epilogue(plan, in);
    return plan;
  }

 private:
  bool lookahead_;
};

}  // namespace

double estimate_shard_seconds(const ModeLowerInput& in, const Shard& shard,
                              int gpu, int streaming_lanes) {
  return estimate_with_stats(in, shard, shard_run_stats(in, shard), gpu,
                             streaming_lanes);
}

std::unique_ptr<Scheduler> make_scheduler(SchedulingPolicy policy,
                                          bool pipelined) {
  switch (policy) {
    case SchedulingPolicy::kDynamicQueue:
      return std::make_unique<DynamicQueueScheduler>();
    case SchedulingPolicy::kDynamicLookahead:
      return std::make_unique<DynamicQueueScheduler>(/*lookahead=*/true);
    case SchedulingPolicy::kWeightedStatic:
      return std::make_unique<WeightedStaticScheduler>(pipelined);
    case SchedulingPolicy::kCostModel:
      return std::make_unique<CostModelScheduler>(pipelined);
    case SchedulingPolicy::kStaticGreedy:
    case SchedulingPolicy::kContiguous:
      break;
  }
  return std::make_unique<StaticScheduler>(policy, pipelined);
}

std::unique_ptr<Scheduler> make_scheduler(const MttkrpOptions& options) {
  return make_scheduler(options.policy, options.pipelined_streaming);
}

}  // namespace amped::exec
