#include "exec/plan.hpp"

#include <algorithm>
#include <cassert>
#include <exception>
#include <queue>
#include <span>
#include <utility>

#include "exec/host_backend.hpp"
#include "sim/fluid_link.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace amped::exec {

std::string shard_label(const Task& t) {
  return "grid mode" + std::to_string(t.mode) + " idx[" +
         std::to_string(t.index_begin) + "," + std::to_string(t.index_end) +
         ")";
}

namespace {

// Per-GPU dispatch counters, resolved once per dynamic segment (the
// registry lookup locks; the per-unit inc is one relaxed add). Shared
// name family with the host backend's "sched.host.units_dispatched.*".
std::vector<metrics::Counter*> dispatch_counters(int m) {
  std::vector<metrics::Counter*> counters;
  counters.reserve(static_cast<std::size_t>(m));
  for (int g = 0; g < m; ++g) {
    counters.push_back(&metrics::counter("sched.sim.units_dispatched.gpu" +
                                         std::to_string(g)));
  }
  return counters;
}

// Total bytes an all-gather of these partitions puts on the wire, matching
// allgather_factor_rows' bookkeeping: ring and direct send every partition
// to M-1 peers; host-staged moves each partition D2H once and broadcasts
// the concatenation to all M GPUs.
std::uint64_t allgather_bytes(int m, std::span<const std::uint64_t> part_bytes,
                              AllGatherAlgo algo) {
  std::uint64_t total = 0;
  for (const auto p : part_bytes) total += p;
  if (m <= 1) return 0;
  if (algo == AllGatherAlgo::kHostStaged) {
    return total + static_cast<std::uint64_t>(m) * total;
  }
  return static_cast<std::uint64_t>(m - 1) * total;
}

// Dependency-driven interpreter for graph-scheduled plans (Plan::graph).
//
// Two passes. Pass 1 runs the real side effects (streamer acquires,
// kernel arithmetic, host ops) in plan order — compose_graph emits tasks
// with every dependency pointing backward, so plan order is a valid
// topological order and the arithmetic is memcmp-identical to running
// each source plan solo. It also prices everything whose cost does not
// depend on the timeline: kernel seconds and all-gather seconds/bytes.
//
// Pass 2 places the tasks on a modelled timeline, per engine:
//
//  - each GPU keeps a copy engine and a compute engine (pipelined
//    semantics: the next shard's H2D streams while the current grid
//    computes, only exposed transfer time is charged);
//  - H2D transfers go through one FluidHostLink, so the modelled rate of
//    every transfer reflects how many lanes actually stream during its
//    interval rather than a static all-lanes share;
//  - all-gathers run on one serialised collective engine: a gather edge
//    starts when its producers finish and occupies an interval of the
//    timeline without forcing every device clock through a barrier —
//    downstream kernels of *other* scopes keep computing underneath it;
//  - host ops (ALS solves) run on the host engine at zero modelled cost,
//    ordered by their dependencies.
//
// Each engine runs its tasks FIFO in plan order; across engines the
// scheduler always expands the earliest-starting ready task. That order
// is load-bearing: it makes fluid-link admissions nondecreasing in
// simulated time, so every transfer is priced by the lanes genuinely
// streaming beside it. (Walking tasks in raw plan order instead would
// clamp out-of-order admissions to the link clock and queue phantom
// contention behind transfers that in truth ran earlier.)
//
// The device clocks are committed once at the end (compute, exposed H2D,
// gather share, then a sync to the global modelled finish), so the
// platform's makespan growth equals the modelled graph makespan.
ExecReport run_plan_graph(sim::Platform& platform, Plan& plan) {
  const int m = platform.num_gpus();
  const std::size_t scopes = plan.num_scopes();
  ExecReport report;
  report.per_gpu_compute.assign(static_cast<std::size_t>(m), 0.0);
  report.scope_gpu_compute.assign(
      scopes, std::vector<double>(static_cast<std::size_t>(m), 0.0));
  report.scope_owned_rows.assign(
      scopes, std::vector<std::uint64_t>(static_cast<std::size_t>(m), 0));
  report.scope_kernel_start.assign(scopes, -1.0);
  report.scope_kernel_finish.assign(scopes, -1.0);

  const double t0 = platform.makespan();
  sim::TraceLog* trace = platform.trace();

  // ---- Pass 1: side effects and timeline-independent prices.
  std::vector<double> duration(plan.tasks.size(), 0.0);
  std::vector<std::uint64_t> edge_bytes(plan.tasks.size(), 0);
  std::vector<double> ec_total(static_cast<std::size_t>(m), 0.0);
  double gather_total = 0.0;

  // Live stream views, one per streamer: lanes of different chains
  // interleave in plan order, so the view a kernel reads is found through
  // its H2D dependency's streamer rather than "the lane's latest fetch".
  std::vector<io::ShardStreamer::View> views(plan.streamers.size());
  constexpr std::size_t kNoStreamer = static_cast<std::size_t>(-1);
  std::vector<std::size_t> task_streamer(plan.tasks.size(), kNoStreamer);

  for (std::size_t id = 0; id < plan.tasks.size(); ++id) {
    Task& t = plan.tasks[id];
    switch (t.kind) {
      case TaskKind::kSpillFetch:
        assert(t.gpu >= 0 && "graph plans use static lanes");
        views[t.streamer] = plan.streamers[t.streamer]->acquire(t.stream_pos);
        task_streamer[id] = t.streamer;
        break;
      case TaskKind::kH2D:
        if (t.alloc_bytes) platform.gpu(t.gpu).alloc(t.alloc_bytes);
        for (std::size_t dep : t.deps) {
          if (task_streamer[dep] != kNoStreamer) {
            task_streamer[id] = task_streamer[dep];
          }
        }
        break;
      case TaskKind::kD2H:
        duration[id] = platform.d2h_seconds(t.transfer_bytes);
        break;
      case TaskKind::kKernel: {
        assert(t.gpu >= 0 && "graph plans use static lanes");
        const auto g = static_cast<std::size_t>(t.gpu);
        std::size_t streamer = kNoStreamer;
        for (std::size_t dep : t.deps) {
          if (task_streamer[dep] != kNoStreamer) {
            streamer = task_streamer[dep];
          }
        }
        const ExecContext ctx{platform, t.gpu,
                              streamer == kNoStreamer ? nullptr
                                                      : &views[streamer]};
        const double ec = t.kernel(ctx);
        if (t.free_bytes) platform.gpu(t.gpu).free(t.free_bytes);
        duration[id] = ec;
        ec_total[g] += ec;
        report.per_gpu_compute[g] += ec;
        report.scope_gpu_compute[t.scope][g] += ec;
        report.scope_owned_rows[t.scope][g] += t.owned_rows;
        break;
      }
      case TaskKind::kAllGather: {
        // Producers precede their gather in plan order, so the scope's
        // owned-row tally is complete by the time its edge is priced.
        std::vector<std::uint64_t> part_bytes(static_cast<std::size_t>(m), 0);
        for (int g = 0; g < m; ++g) {
          part_bytes[static_cast<std::size_t>(g)] =
              report.scope_owned_rows[t.scope][static_cast<std::size_t>(g)] *
              t.row_bytes;
        }
        duration[id] = allgather_seconds(platform, part_bytes, t.allgather);
        edge_bytes[id] = allgather_bytes(m, part_bytes, t.allgather);
        gather_total += duration[id];
        break;
      }
      case TaskKind::kHostOp:
        t.host_op(platform);
        break;
      case TaskKind::kBarrier:
        assert(false && "graph plans carry no barriers (they are edges)");
        break;
    }
  }

  // ---- Pass 2: dependency-driven timing.
  const std::size_t num_engines = 2 * static_cast<std::size_t>(m) + 2;
  const std::size_t gather_engine = 2 * static_cast<std::size_t>(m);
  const std::size_t host_engine = gather_engine + 1;
  auto engine_of = [&](const Task& t) -> std::size_t {
    switch (t.kind) {
      case TaskKind::kKernel:
        return static_cast<std::size_t>(m + t.gpu);
      case TaskKind::kAllGather:
        return gather_engine;
      case TaskKind::kHostOp:
        return host_engine;
      default:  // kSpillFetch / kH2D / kD2H share the lane's copy engine
        return static_cast<std::size_t>(t.gpu);
    }
  };

  std::vector<std::vector<std::size_t>> queue(num_engines);
  std::vector<std::size_t> task_engine(plan.tasks.size());
  std::vector<std::size_t> pending(plan.tasks.size(), 0);
  std::vector<std::vector<std::size_t>> dependents(plan.tasks.size());
  for (std::size_t id = 0; id < plan.tasks.size(); ++id) {
    task_engine[id] = engine_of(plan.tasks[id]);
    queue[task_engine[id]].push_back(id);
    pending[id] = plan.tasks[id].deps.size();
    for (std::size_t dep : plan.tasks[id].deps) dependents[dep].push_back(id);
  }

  // Engine frontiers (absolute modelled time) and lane starting clocks.
  std::vector<double> frontier(num_engines, t0);
  std::vector<double> lane_start(static_cast<std::size_t>(m));
  for (int g = 0; g < m; ++g) {
    const auto i = static_cast<std::size_t>(g);
    lane_start[i] = platform.gpu(g).clock();
    frontier[i] = frontier[static_cast<std::size_t>(m) + i] = lane_start[i];
  }
  frontier[host_engine] = platform.host().clock();

  // One shared host link: every H2D is admitted at its modelled start and
  // completes at the fluid processor-sharing rate for the lanes streaming
  // alongside it.
  const auto& cfg = platform.config();
  sim::FluidHostLink link(cfg.host_link.bandwidth,
                          cfg.host_aggregate_bandwidth > 0.0
                              ? cfg.host_aggregate_bandwidth
                              : cfg.host_link.bandwidth *
                                    static_cast<double>(std::max(m, 1)));
  const double h2d_latency =
      cfg.host_link.latency_s / platform.fixed_cost_divisor();

  std::vector<double> finish(plan.tasks.size(), 0.0);
  std::vector<char> queued(plan.tasks.size(), 0);
  std::vector<std::size_t> head(num_engines, 0);

  auto start_of = [&](std::size_t id) {
    double s = frontier[task_engine[id]];
    for (std::size_t dep : plan.tasks[id].deps) s = std::max(s, finish[dep]);
    return s;
  };
  using Entry = std::pair<double, std::size_t>;  // (start, engine)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> ready;
  // An engine's head enters the ready heap once all its dependencies have
  // finished; its start is final at that point (the engine frontier can't
  // move while an earlier head is still queued), so entries never go
  // stale and every pop is the globally earliest unexpanded task.
  auto enqueue_head = [&](std::size_t e) {
    if (head[e] >= queue[e].size()) return;
    const std::size_t id = queue[e][head[e]];
    if (pending[id] != 0 || queued[id]) return;
    queued[id] = 1;
    ready.push({start_of(id), e});
  };
  for (std::size_t e = 0; e < num_engines; ++e) enqueue_head(e);

  while (!ready.empty()) {
    const auto [start, e] = ready.top();
    ready.pop();
    const std::size_t id = queue[e][head[e]];
    const Task& t = plan.tasks[id];
    double fin = start;
    switch (t.kind) {
      case TaskKind::kH2D: {
        const std::size_t flow = link.admit(start, t.transfer_bytes);
        fin = link.completion(flow) + h2d_latency;
        if (trace != nullptr && fin > start) {
          trace->record(sim::TraceEvent{.device = t.gpu,
                                        .engine = 1,
                                        .phase = sim::Phase::kHostToDevice,
                                        .start_s = start,
                                        .duration_s = fin - start,
                                        .label = {}});
        }
        break;
      }
      case TaskKind::kD2H:
        fin = start + duration[id];
        break;
      case TaskKind::kKernel: {
        fin = start + duration[id];
        if (trace != nullptr && duration[id] > 0.0) {
          trace->record(sim::TraceEvent{
              .device = t.gpu,
              .engine = 0,
              .phase = sim::Phase::kCompute,
              .start_s = start,
              .duration_s = duration[id],
              .label = t.labelled ? shard_label(t) : std::string{}});
        }
        auto& sks = report.scope_kernel_start[t.scope];
        auto& skf = report.scope_kernel_finish[t.scope];
        if (sks < 0.0 || start - t0 < sks) sks = start - t0;
        if (fin - t0 > skf) skf = fin - t0;
        break;
      }
      case TaskKind::kAllGather:
        fin = start + duration[id];
        report.gather_edges.push_back(
            ExecReport::GatherEdge{.scope = t.scope,
                                   .mode = t.mode,
                                   .bytes = edge_bytes[id],
                                   .seconds = duration[id],
                                   .start = start - t0,
                                   .finish = fin - t0});
        if (trace != nullptr && duration[id] > 0.0) {
          trace->record(sim::TraceEvent{
              .device = -1,
              .engine = 1,
              .phase = sim::Phase::kPeerToPeer,
              .start_s = start,
              .duration_s = duration[id],
              .label = "gather-edge scope" + std::to_string(t.scope) +
                       " mode" + std::to_string(t.mode)});
        }
        break;
      default:  // kSpillFetch and kHostOp carry zero modelled cost
        break;
    }
    finish[id] = fin;
    frontier[e] = fin;
    ++head[e];
    for (std::size_t d : dependents[id]) {
      if (--pending[d] == 0) enqueue_head(task_engine[d]);
    }
    enqueue_head(e);
  }

  double global_finish = t0;
  for (const double f : finish) global_finish = std::max(global_finish, f);

  // Commit modelled time to the device clocks once: compute, exposed
  // transfer, the gather share (clamped so no clock overshoots the graph
  // makespan), then a sync to the global finish. Traces detach for the
  // commit — the per-task events above already carry the modelled
  // timeline, and the lump-sum advances would double-count it.
  if (trace != nullptr) platform.attach_trace(nullptr);
  for (int g = 0; g < m; ++g) {
    const auto i = static_cast<std::size_t>(g);
    auto& device = platform.gpu(g);
    const double lane_finish =
        std::max(frontier[i], frontier[static_cast<std::size_t>(m) + i]);
    const double exposed_h2d =
        std::max(0.0, lane_finish - lane_start[i] - ec_total[i]);
    device.advance(sim::Phase::kHostToDevice, exposed_h2d);
    device.advance(sim::Phase::kCompute, ec_total[i]);
    const double slack = std::max(0.0, global_finish - device.clock());
    device.advance(sim::Phase::kPeerToPeer, std::min(gather_total, slack));
    device.wait_until(global_finish);
  }
  if (trace != nullptr) platform.attach_trace(trace);
  return report;
}

}  // namespace

ExecReport PlanExecutor::run(Plan& plan) {
  if (backend_ == ExecBackend::kHostParallel) {
    return run_plan_host_parallel(platform_, plan);
  }
  if (plan.graph) {
    return run_plan_graph(platform_, plan);
  }
  const int m = platform_.num_gpus();
  const std::size_t scopes = plan.num_scopes();
  const double run_t0 = platform_.makespan();
  ExecReport report;
  report.per_gpu_compute.assign(static_cast<std::size_t>(m), 0.0);
  report.scope_gpu_compute.assign(
      scopes, std::vector<double>(static_cast<std::size_t>(m), 0.0));
  report.scope_owned_rows.assign(
      scopes,
      std::vector<std::uint64_t>(static_cast<std::size_t>(m), 0));

  // Completion time of each lane task, used by pipelined kernels to
  // synchronise on their H2D dependencies.
  std::vector<double> finish(plan.tasks.size(), 0.0);

  // Books one executed kernel: per-GPU totals and the per-scope splits
  // (all-gather sizing, batch attribution) always move together.
  // Concurrent lanes write disjoint [scope][gpu] slots, so this is safe
  // under parallel lane execution.
  auto charge_kernel = [&](const Task& t, int gpu, double ec) {
    const auto g = static_cast<std::size_t>(gpu);
    report.per_gpu_compute[g] += ec;
    report.scope_gpu_compute[t.scope][g] += ec;
    report.scope_owned_rows[t.scope][g] += t.owned_rows;
  };

  // Executes tasks `ids` (all belonging to GPU `gpu`) with sequential or
  // pipelined engine semantics. Lane-local state only: safe to run lanes
  // of disjoint GPUs concurrently when the plan allows it.
  auto run_lane = [&](int gpu, const std::vector<std::size_t>& ids) {
    auto& device = platform_.gpu(gpu);
    io::ShardStreamer::View view;
    bool have_view = false;
    const ExecContext ctx{platform_, gpu, &view};
    const ExecContext ctx_no_view{platform_, gpu, nullptr};

    if (!plan.pipelined) {
      for (std::size_t id : ids) {
        Task& t = plan.tasks[id];
        switch (t.kind) {
          case TaskKind::kSpillFetch:
            view = plan.streamers[t.streamer]->acquire(t.stream_pos);
            have_view = true;
            break;
          case TaskKind::kH2D:
            if (t.alloc_bytes) device.alloc(t.alloc_bytes);
            platform_.h2d(gpu, t.transfer_bytes);
            break;
          case TaskKind::kD2H:
            platform_.d2h(gpu, t.transfer_bytes);
            break;
          case TaskKind::kKernel: {
            const double ec = t.kernel(have_view ? ctx : ctx_no_view);
            std::string label;
            if (t.labelled && device.tracing()) label = shard_label(t);
            device.advance(sim::Phase::kCompute, ec, std::move(label));
            if (t.free_bytes) device.free(t.free_bytes);
            charge_kernel(t, gpu, ec);
            break;
          }
          default:
            assert(false && "global task inside a lane");
        }
        finish[id] = device.clock();
      }
      return;
    }

    // Pipelined: a copy engine and a compute engine share the device
    // clock's start; the device is charged the compute time plus only the
    // exposed (non-overlapped) transfer time at lane end.
    const double start = device.clock();
    double copy_clock = start;
    double compute_clock = start;
    double ec_total = 0.0;
    for (std::size_t id : ids) {
      Task& t = plan.tasks[id];
      switch (t.kind) {
        case TaskKind::kSpillFetch:
          view = plan.streamers[t.streamer]->acquire(t.stream_pos);
          have_view = true;
          finish[id] = copy_clock;
          break;
        case TaskKind::kH2D:
          copy_clock += platform_.h2d_seconds(t.transfer_bytes);
          finish[id] = copy_clock;
          break;
        case TaskKind::kKernel: {
          const double ec = t.kernel(have_view ? ctx : ctx_no_view);
          double landed = compute_clock;
          for (std::size_t dep : t.deps) {
            landed = std::max(landed, finish[dep]);
          }
          compute_clock = landed + ec;
          ec_total += ec;
          finish[id] = compute_clock;
          charge_kernel(t, gpu, ec);
          break;
        }
        default:
          assert(false && "task kind unsupported in a pipelined lane");
      }
    }
    const double lane_finish = std::max(copy_clock, compute_clock);
    const double exposed_h2d =
        std::max(0.0, lane_finish - start - ec_total);
    device.advance(sim::Phase::kHostToDevice, exposed_h2d);
    device.advance(sim::Phase::kCompute, ec_total);
  };

  // Dynamic dispatch: consecutive tasks up to and including a kernel form
  // one dispatch unit, handed in plan order to the earliest-idle GPU (the
  // simulated clock is the idle signal — a work queue, exactly).
  auto run_dynamic = [&](const std::vector<std::size_t>& ids) {
    using Entry = std::pair<double, int>;  // (clock, gpu)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> idle;
    for (int g = 0; g < m; ++g) idle.push({platform_.gpu(g).clock(), g});
    std::vector<metrics::Counter*> dispatched = dispatch_counters(m);
    std::vector<std::size_t> unit;
    for (std::size_t id : ids) {
      unit.push_back(id);
      if (plan.tasks[id].kind != TaskKind::kKernel) continue;
      auto [clock, g] = idle.top();
      idle.pop();
      dispatched[static_cast<std::size_t>(g)]->inc();
      run_lane(g, unit);
      unit.clear();
      idle.push({platform_.gpu(g).clock(), g});
    }
    assert(unit.empty() && "dynamic plan must end each unit with a kernel");
  };

  // Look-ahead dynamic dispatch (kDynamicLookahead): every GPU keeps a
  // copy engine and a compute engine. A dispatch unit goes to the GPU
  // whose pipeline accepts it earliest — the time its kernel could start
  // given the copy engine's backlog — so unit i+1's H2D streams while
  // unit i's grid computes. Commit follows the pipelined lane rules: only
  // the exposed (non-overlapped) transfer time is charged at the end.
  auto run_dynamic_lookahead = [&](const std::vector<std::size_t>& ids) {
    struct Pipeline {
      double start = 0.0;  // device clock when dispatch began
      double copy = 0.0;   // copy-engine frontier
      double compute = 0.0;
      double ec_total = 0.0;
    };
    std::vector<Pipeline> pipe(static_cast<std::size_t>(m));
    for (int g = 0; g < m; ++g) {
      auto& p = pipe[static_cast<std::size_t>(g)];
      p.start = p.copy = p.compute = platform_.gpu(g).clock();
    }
    io::ShardStreamer::View view;
    bool have_view = false;
    std::vector<metrics::Counter*> dispatched = dispatch_counters(m);
    metrics::Counter& lookahead_wins = metrics::counter("sched.lookahead_wins");
    // Fluid host-link contention: a transfer admitted on lane `self` at
    // time `at` shares the host memory system with every lane whose copy
    // engine is still streaming past that instant, so it is priced at the
    // processor-sharing rate for that many concurrent streams instead of
    // the static all-lanes share (sim/fluid_link.hpp).
    auto streaming_lanes_at = [&](int self, double at) {
      int lanes = 1;
      for (int g = 0; g < m; ++g) {
        if (g != self && pipe[static_cast<std::size_t>(g)].copy > at) {
          ++lanes;
        }
      }
      return lanes;
    };
    std::vector<std::size_t> unit;
    for (std::size_t id : ids) {
      unit.push_back(id);
      if (plan.tasks[id].kind != TaskKind::kKernel) continue;

      // The unit's total transfer decides where its kernel could start
      // soonest: max(compute frontier, copy frontier + H2D time), the
      // look-ahead criterion (ties to the lowest GPU id). The candidate
      // H2D time is priced per lane at that lane's fluid share.
      std::uint64_t h2d_bytes = 0;
      for (std::size_t tid : unit) {
        if (plan.tasks[tid].kind == TaskKind::kH2D) {
          h2d_bytes += plan.tasks[tid].transfer_bytes;
        }
      }
      int best = 0;
      double best_start = 0.0;
      int greedy = 0;  // what compute-frontier-only dispatch would pick
      double greedy_start = 0.0;
      for (int g = 0; g < m; ++g) {
        const auto& p = pipe[static_cast<std::size_t>(g)];
        const double h2d_seconds =
            platform_.h2d_seconds(h2d_bytes, streaming_lanes_at(g, p.copy));
        const double start_at = std::max(p.compute, p.copy + h2d_seconds);
        if (g == 0 || start_at < best_start) {
          best = g;
          best_start = start_at;
        }
        if (g == 0 || p.compute < greedy_start) {
          greedy = g;
          greedy_start = p.compute;
        }
      }
      dispatched[static_cast<std::size_t>(best)]->inc();
      // A "win" is a unit the copy-backlog criterion routed somewhere the
      // compute frontier alone would not have.
      if (best != greedy) lookahead_wins.inc();
      auto& p = pipe[static_cast<std::size_t>(best)];
      const ExecContext ctx{platform_, best, &view};
      const ExecContext ctx_no_view{platform_, best, nullptr};
      for (std::size_t tid : unit) {
        Task& t = plan.tasks[tid];
        switch (t.kind) {
          case TaskKind::kSpillFetch:
            view = plan.streamers[t.streamer]->acquire(t.stream_pos);
            have_view = true;
            finish[tid] = p.copy;
            break;
          case TaskKind::kH2D:
            p.copy += platform_.h2d_seconds(
                t.transfer_bytes, streaming_lanes_at(best, p.copy));
            finish[tid] = p.copy;
            break;
          case TaskKind::kKernel: {
            const double ec = t.kernel(have_view ? ctx : ctx_no_view);
            double landed = p.compute;
            for (std::size_t dep : t.deps) {
              landed = std::max(landed, finish[dep]);
            }
            p.compute = landed + ec;
            p.ec_total += ec;
            finish[tid] = p.compute;
            charge_kernel(t, best, ec);
            break;
          }
          default:
            assert(false && "task kind unsupported under look-ahead dispatch");
        }
      }
      unit.clear();
    }
    assert(unit.empty() && "dynamic plan must end each unit with a kernel");
    for (int g = 0; g < m; ++g) {
      auto& p = pipe[static_cast<std::size_t>(g)];
      auto& device = platform_.gpu(g);
      const double lane_finish = std::max(p.copy, p.compute);
      const double exposed_h2d =
          std::max(0.0, lane_finish - p.start - p.ec_total);
      device.advance(sim::Phase::kHostToDevice, exposed_h2d);
      device.advance(sim::Phase::kCompute, p.ec_total);
    }
  };

  // Flushes a run of lane/dynamic tasks accumulated between global tasks.
  std::vector<std::size_t> segment;
  auto flush = [&] {
    if (segment.empty()) return;
    if (plan.tasks[segment.front()].gpu == kAnyGpu) {
      if (plan.pipelined) {
        run_dynamic_lookahead(segment);
      } else {
        run_dynamic(segment);
      }
      segment.clear();
      return;
    }
    std::vector<std::vector<std::size_t>> lanes(
        static_cast<std::size_t>(m));
    for (std::size_t id : segment) {
      const int gpu = plan.tasks[id].gpu;
      assert(gpu >= 0 && gpu < m && "mixed dynamic/static segment");
      lanes[static_cast<std::size_t>(gpu)].push_back(id);
    }
    std::vector<int> active;
    for (int g = 0; g < m; ++g) {
      if (!lanes[static_cast<std::size_t>(g)].empty()) active.push_back(g);
    }
    const bool tracing = m > 0 && platform_.gpu(0).tracing();
    if (plan.parallel_lanes && active.size() > 1 && !tracing &&
        host_parallelism() > 1) {
      // Lanes of an AMPED-style plan own disjoint output rows and private
      // device state, so they run concurrently on the host pool —
      // bit-identical to the serial order (see thread_pool_test).
      std::vector<std::exception_ptr> errors(active.size());
      global_thread_pool().parallel_for(active.size(), [&](std::size_t i) {
        try {
          const int g = active[i];
          run_lane(g, lanes[static_cast<std::size_t>(g)]);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
      for (auto& e : errors) {
        if (e) std::rethrow_exception(e);
      }
    } else {
      for (int g : active) run_lane(g, lanes[static_cast<std::size_t>(g)]);
    }
    segment.clear();
  };

  for (std::size_t id = 0; id < plan.tasks.size(); ++id) {
    Task& t = plan.tasks[id];
    switch (t.kind) {
      case TaskKind::kBarrier:
        flush();
        platform_.barrier();
        break;
      case TaskKind::kAllGather: {
        flush();
        // Sized from this scope's runtime row ownership only, so composed
        // plans exchange exactly what each source plan's kernels updated.
        std::vector<std::uint64_t> part_bytes(static_cast<std::size_t>(m),
                                              0);
        for (int g = 0; g < m; ++g) {
          part_bytes[static_cast<std::size_t>(g)] =
              report.scope_owned_rows[t.scope][static_cast<std::size_t>(g)] *
              t.row_bytes;
        }
        const double gather_start = platform_.makespan() - run_t0;
        const AllGatherReport ag =
            allgather_factor_rows(platform_, part_bytes, t.allgather);
        report.gather_edges.push_back(
            ExecReport::GatherEdge{.scope = t.scope,
                                   .mode = t.mode,
                                   .bytes = ag.bytes_moved,
                                   .seconds = ag.seconds,
                                   .start = gather_start,
                                   .finish = gather_start + ag.seconds});
        break;
      }
      case TaskKind::kHostOp:
        flush();
        t.host_op(platform_);
        break;
      default:
        segment.push_back(id);
    }
  }
  flush();
  return report;
}

}  // namespace amped::exec
