#include "exec/plan.hpp"

#include <algorithm>
#include <cassert>
#include <exception>
#include <queue>
#include <utility>

#include "exec/host_backend.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace amped::exec {

std::string shard_label(const Task& t) {
  return "grid mode" + std::to_string(t.mode) + " idx[" +
         std::to_string(t.index_begin) + "," + std::to_string(t.index_end) +
         ")";
}

namespace {

// Per-GPU dispatch counters, resolved once per dynamic segment (the
// registry lookup locks; the per-unit inc is one relaxed add). Shared
// name family with the host backend's "sched.host.units_dispatched.*".
std::vector<metrics::Counter*> dispatch_counters(int m) {
  std::vector<metrics::Counter*> counters;
  counters.reserve(static_cast<std::size_t>(m));
  for (int g = 0; g < m; ++g) {
    counters.push_back(&metrics::counter("sched.sim.units_dispatched.gpu" +
                                         std::to_string(g)));
  }
  return counters;
}

}  // namespace

ExecReport PlanExecutor::run(Plan& plan) {
  if (backend_ == ExecBackend::kHostParallel) {
    return run_plan_host_parallel(platform_, plan);
  }
  const int m = platform_.num_gpus();
  const std::size_t scopes = plan.num_scopes();
  ExecReport report;
  report.per_gpu_compute.assign(static_cast<std::size_t>(m), 0.0);
  report.scope_gpu_compute.assign(
      scopes, std::vector<double>(static_cast<std::size_t>(m), 0.0));
  report.scope_owned_rows.assign(
      scopes,
      std::vector<std::uint64_t>(static_cast<std::size_t>(m), 0));

  // Completion time of each lane task, used by pipelined kernels to
  // synchronise on their H2D dependencies.
  std::vector<double> finish(plan.tasks.size(), 0.0);

  // Books one executed kernel: per-GPU totals and the per-scope splits
  // (all-gather sizing, batch attribution) always move together.
  // Concurrent lanes write disjoint [scope][gpu] slots, so this is safe
  // under parallel lane execution.
  auto charge_kernel = [&](const Task& t, int gpu, double ec) {
    const auto g = static_cast<std::size_t>(gpu);
    report.per_gpu_compute[g] += ec;
    report.scope_gpu_compute[t.scope][g] += ec;
    report.scope_owned_rows[t.scope][g] += t.owned_rows;
  };

  // Executes tasks `ids` (all belonging to GPU `gpu`) with sequential or
  // pipelined engine semantics. Lane-local state only: safe to run lanes
  // of disjoint GPUs concurrently when the plan allows it.
  auto run_lane = [&](int gpu, const std::vector<std::size_t>& ids) {
    auto& device = platform_.gpu(gpu);
    io::ShardStreamer::View view;
    bool have_view = false;
    const ExecContext ctx{platform_, gpu, &view};
    const ExecContext ctx_no_view{platform_, gpu, nullptr};

    if (!plan.pipelined) {
      for (std::size_t id : ids) {
        Task& t = plan.tasks[id];
        switch (t.kind) {
          case TaskKind::kSpillFetch:
            view = plan.streamers[t.streamer]->acquire(t.stream_pos);
            have_view = true;
            break;
          case TaskKind::kH2D:
            if (t.alloc_bytes) device.alloc(t.alloc_bytes);
            platform_.h2d(gpu, t.transfer_bytes);
            break;
          case TaskKind::kD2H:
            platform_.d2h(gpu, t.transfer_bytes);
            break;
          case TaskKind::kKernel: {
            const double ec = t.kernel(have_view ? ctx : ctx_no_view);
            std::string label;
            if (t.labelled && device.tracing()) label = shard_label(t);
            device.advance(sim::Phase::kCompute, ec, std::move(label));
            if (t.free_bytes) device.free(t.free_bytes);
            charge_kernel(t, gpu, ec);
            break;
          }
          default:
            assert(false && "global task inside a lane");
        }
        finish[id] = device.clock();
      }
      return;
    }

    // Pipelined: a copy engine and a compute engine share the device
    // clock's start; the device is charged the compute time plus only the
    // exposed (non-overlapped) transfer time at lane end.
    const double start = device.clock();
    double copy_clock = start;
    double compute_clock = start;
    double ec_total = 0.0;
    for (std::size_t id : ids) {
      Task& t = plan.tasks[id];
      switch (t.kind) {
        case TaskKind::kSpillFetch:
          view = plan.streamers[t.streamer]->acquire(t.stream_pos);
          have_view = true;
          finish[id] = copy_clock;
          break;
        case TaskKind::kH2D:
          copy_clock += platform_.h2d_seconds(t.transfer_bytes);
          finish[id] = copy_clock;
          break;
        case TaskKind::kKernel: {
          const double ec = t.kernel(have_view ? ctx : ctx_no_view);
          double landed = compute_clock;
          for (std::size_t dep : t.deps) {
            landed = std::max(landed, finish[dep]);
          }
          compute_clock = landed + ec;
          ec_total += ec;
          finish[id] = compute_clock;
          charge_kernel(t, gpu, ec);
          break;
        }
        default:
          assert(false && "task kind unsupported in a pipelined lane");
      }
    }
    const double lane_finish = std::max(copy_clock, compute_clock);
    const double exposed_h2d =
        std::max(0.0, lane_finish - start - ec_total);
    device.advance(sim::Phase::kHostToDevice, exposed_h2d);
    device.advance(sim::Phase::kCompute, ec_total);
  };

  // Dynamic dispatch: consecutive tasks up to and including a kernel form
  // one dispatch unit, handed in plan order to the earliest-idle GPU (the
  // simulated clock is the idle signal — a work queue, exactly).
  auto run_dynamic = [&](const std::vector<std::size_t>& ids) {
    using Entry = std::pair<double, int>;  // (clock, gpu)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> idle;
    for (int g = 0; g < m; ++g) idle.push({platform_.gpu(g).clock(), g});
    std::vector<metrics::Counter*> dispatched = dispatch_counters(m);
    std::vector<std::size_t> unit;
    for (std::size_t id : ids) {
      unit.push_back(id);
      if (plan.tasks[id].kind != TaskKind::kKernel) continue;
      auto [clock, g] = idle.top();
      idle.pop();
      dispatched[static_cast<std::size_t>(g)]->inc();
      run_lane(g, unit);
      unit.clear();
      idle.push({platform_.gpu(g).clock(), g});
    }
    assert(unit.empty() && "dynamic plan must end each unit with a kernel");
  };

  // Look-ahead dynamic dispatch (kDynamicLookahead): every GPU keeps a
  // copy engine and a compute engine. A dispatch unit goes to the GPU
  // whose pipeline accepts it earliest — the time its kernel could start
  // given the copy engine's backlog — so unit i+1's H2D streams while
  // unit i's grid computes. Commit follows the pipelined lane rules: only
  // the exposed (non-overlapped) transfer time is charged at the end.
  auto run_dynamic_lookahead = [&](const std::vector<std::size_t>& ids) {
    struct Pipeline {
      double start = 0.0;  // device clock when dispatch began
      double copy = 0.0;   // copy-engine frontier
      double compute = 0.0;
      double ec_total = 0.0;
    };
    std::vector<Pipeline> pipe(static_cast<std::size_t>(m));
    for (int g = 0; g < m; ++g) {
      auto& p = pipe[static_cast<std::size_t>(g)];
      p.start = p.copy = p.compute = platform_.gpu(g).clock();
    }
    io::ShardStreamer::View view;
    bool have_view = false;
    std::vector<metrics::Counter*> dispatched = dispatch_counters(m);
    metrics::Counter& lookahead_wins = metrics::counter("sched.lookahead_wins");
    std::vector<std::size_t> unit;
    for (std::size_t id : ids) {
      unit.push_back(id);
      if (plan.tasks[id].kind != TaskKind::kKernel) continue;

      // The unit's total transfer decides where its kernel could start
      // soonest: max(compute frontier, copy frontier + H2D time), the
      // look-ahead criterion (ties to the lowest GPU id).
      double h2d_seconds = 0.0;
      for (std::size_t tid : unit) {
        if (plan.tasks[tid].kind == TaskKind::kH2D) {
          h2d_seconds += platform_.h2d_seconds(plan.tasks[tid].transfer_bytes);
        }
      }
      int best = 0;
      double best_start = 0.0;
      int greedy = 0;  // what compute-frontier-only dispatch would pick
      double greedy_start = 0.0;
      for (int g = 0; g < m; ++g) {
        const auto& p = pipe[static_cast<std::size_t>(g)];
        const double start_at = std::max(p.compute, p.copy + h2d_seconds);
        if (g == 0 || start_at < best_start) {
          best = g;
          best_start = start_at;
        }
        if (g == 0 || p.compute < greedy_start) {
          greedy = g;
          greedy_start = p.compute;
        }
      }
      dispatched[static_cast<std::size_t>(best)]->inc();
      // A "win" is a unit the copy-backlog criterion routed somewhere the
      // compute frontier alone would not have.
      if (best != greedy) lookahead_wins.inc();
      auto& p = pipe[static_cast<std::size_t>(best)];
      const ExecContext ctx{platform_, best, &view};
      const ExecContext ctx_no_view{platform_, best, nullptr};
      for (std::size_t tid : unit) {
        Task& t = plan.tasks[tid];
        switch (t.kind) {
          case TaskKind::kSpillFetch:
            view = plan.streamers[t.streamer]->acquire(t.stream_pos);
            have_view = true;
            finish[tid] = p.copy;
            break;
          case TaskKind::kH2D:
            p.copy += platform_.h2d_seconds(t.transfer_bytes);
            finish[tid] = p.copy;
            break;
          case TaskKind::kKernel: {
            const double ec = t.kernel(have_view ? ctx : ctx_no_view);
            double landed = p.compute;
            for (std::size_t dep : t.deps) {
              landed = std::max(landed, finish[dep]);
            }
            p.compute = landed + ec;
            p.ec_total += ec;
            finish[tid] = p.compute;
            charge_kernel(t, best, ec);
            break;
          }
          default:
            assert(false && "task kind unsupported under look-ahead dispatch");
        }
      }
      unit.clear();
    }
    assert(unit.empty() && "dynamic plan must end each unit with a kernel");
    for (int g = 0; g < m; ++g) {
      auto& p = pipe[static_cast<std::size_t>(g)];
      auto& device = platform_.gpu(g);
      const double lane_finish = std::max(p.copy, p.compute);
      const double exposed_h2d =
          std::max(0.0, lane_finish - p.start - p.ec_total);
      device.advance(sim::Phase::kHostToDevice, exposed_h2d);
      device.advance(sim::Phase::kCompute, p.ec_total);
    }
  };

  // Flushes a run of lane/dynamic tasks accumulated between global tasks.
  std::vector<std::size_t> segment;
  auto flush = [&] {
    if (segment.empty()) return;
    if (plan.tasks[segment.front()].gpu == kAnyGpu) {
      if (plan.pipelined) {
        run_dynamic_lookahead(segment);
      } else {
        run_dynamic(segment);
      }
      segment.clear();
      return;
    }
    std::vector<std::vector<std::size_t>> lanes(
        static_cast<std::size_t>(m));
    for (std::size_t id : segment) {
      const int gpu = plan.tasks[id].gpu;
      assert(gpu >= 0 && gpu < m && "mixed dynamic/static segment");
      lanes[static_cast<std::size_t>(gpu)].push_back(id);
    }
    std::vector<int> active;
    for (int g = 0; g < m; ++g) {
      if (!lanes[static_cast<std::size_t>(g)].empty()) active.push_back(g);
    }
    const bool tracing = m > 0 && platform_.gpu(0).tracing();
    if (plan.parallel_lanes && active.size() > 1 && !tracing &&
        host_parallelism() > 1) {
      // Lanes of an AMPED-style plan own disjoint output rows and private
      // device state, so they run concurrently on the host pool —
      // bit-identical to the serial order (see thread_pool_test).
      std::vector<std::exception_ptr> errors(active.size());
      global_thread_pool().parallel_for(active.size(), [&](std::size_t i) {
        try {
          const int g = active[i];
          run_lane(g, lanes[static_cast<std::size_t>(g)]);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
      for (auto& e : errors) {
        if (e) std::rethrow_exception(e);
      }
    } else {
      for (int g : active) run_lane(g, lanes[static_cast<std::size_t>(g)]);
    }
    segment.clear();
  };

  for (std::size_t id = 0; id < plan.tasks.size(); ++id) {
    Task& t = plan.tasks[id];
    switch (t.kind) {
      case TaskKind::kBarrier:
        flush();
        platform_.barrier();
        break;
      case TaskKind::kAllGather: {
        flush();
        // Sized from this scope's runtime row ownership only, so composed
        // plans exchange exactly what each source plan's kernels updated.
        std::vector<std::uint64_t> part_bytes(static_cast<std::size_t>(m),
                                              0);
        for (int g = 0; g < m; ++g) {
          part_bytes[static_cast<std::size_t>(g)] =
              report.scope_owned_rows[t.scope][static_cast<std::size_t>(g)] *
              t.row_bytes;
        }
        allgather_factor_rows(platform_, part_bytes, t.allgather);
        break;
      }
      case TaskKind::kHostOp:
        flush();
        t.host_op(platform_);
        break;
      default:
        segment.push_back(id);
    }
  }
  flush();
  return report;
}

}  // namespace amped::exec
