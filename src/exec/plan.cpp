#include "exec/plan.hpp"

#include <algorithm>
#include <cassert>
#include <exception>
#include <queue>
#include <utility>

#include "util/thread_pool.hpp"

namespace amped::exec {

namespace {

// Trace label of a shard grid, matching the pre-engine loop verbatim so
// trace consumers (and trace_test) see identical events.
std::string shard_label(const Task& t) {
  return "grid mode" + std::to_string(t.mode) + " idx[" +
         std::to_string(t.index_begin) + "," + std::to_string(t.index_end) +
         ")";
}

}  // namespace

ExecReport PlanExecutor::run(Plan& plan) {
  const int m = platform_.num_gpus();
  ExecReport report;
  report.per_gpu_compute.assign(static_cast<std::size_t>(m), 0.0);
  report.owned_rows.assign(static_cast<std::size_t>(m), 0);

  // Completion time of each lane task, used by pipelined kernels to
  // synchronise on their H2D dependencies.
  std::vector<double> finish(plan.tasks.size(), 0.0);

  // Executes tasks `ids` (all belonging to GPU `gpu`) with sequential or
  // pipelined engine semantics. Lane-local state only: safe to run lanes
  // of disjoint GPUs concurrently when the plan allows it.
  auto run_lane = [&](int gpu, const std::vector<std::size_t>& ids) {
    auto& device = platform_.gpu(gpu);
    io::ShardStreamer::View view;
    bool have_view = false;
    const ExecContext ctx{platform_, gpu, &view};
    const ExecContext ctx_no_view{platform_, gpu, nullptr};

    if (!plan.pipelined) {
      for (std::size_t id : ids) {
        Task& t = plan.tasks[id];
        switch (t.kind) {
          case TaskKind::kSpillFetch:
            view = plan.streamers[t.streamer]->acquire(t.stream_pos);
            have_view = true;
            break;
          case TaskKind::kH2D:
            if (t.alloc_bytes) device.alloc(t.alloc_bytes);
            platform_.h2d(gpu, t.transfer_bytes);
            break;
          case TaskKind::kD2H:
            platform_.d2h(gpu, t.transfer_bytes);
            break;
          case TaskKind::kKernel: {
            const double ec = t.kernel(have_view ? ctx : ctx_no_view);
            std::string label;
            if (t.labelled && device.tracing()) label = shard_label(t);
            device.advance(sim::Phase::kCompute, ec, std::move(label));
            if (t.free_bytes) device.free(t.free_bytes);
            report.per_gpu_compute[static_cast<std::size_t>(gpu)] += ec;
            report.owned_rows[static_cast<std::size_t>(gpu)] += t.owned_rows;
            break;
          }
          default:
            assert(false && "global task inside a lane");
        }
        finish[id] = device.clock();
      }
      return;
    }

    // Pipelined: a copy engine and a compute engine share the device
    // clock's start; the device is charged the compute time plus only the
    // exposed (non-overlapped) transfer time at lane end.
    const double start = device.clock();
    double copy_clock = start;
    double compute_clock = start;
    double ec_total = 0.0;
    for (std::size_t id : ids) {
      Task& t = plan.tasks[id];
      switch (t.kind) {
        case TaskKind::kSpillFetch:
          view = plan.streamers[t.streamer]->acquire(t.stream_pos);
          have_view = true;
          finish[id] = copy_clock;
          break;
        case TaskKind::kH2D:
          copy_clock += platform_.h2d_seconds(t.transfer_bytes);
          finish[id] = copy_clock;
          break;
        case TaskKind::kKernel: {
          const double ec = t.kernel(have_view ? ctx : ctx_no_view);
          double landed = compute_clock;
          for (std::size_t dep : t.deps) {
            landed = std::max(landed, finish[dep]);
          }
          compute_clock = landed + ec;
          ec_total += ec;
          finish[id] = compute_clock;
          report.per_gpu_compute[static_cast<std::size_t>(gpu)] += ec;
          report.owned_rows[static_cast<std::size_t>(gpu)] += t.owned_rows;
          break;
        }
        default:
          assert(false && "task kind unsupported in a pipelined lane");
      }
    }
    const double lane_finish = std::max(copy_clock, compute_clock);
    const double exposed_h2d =
        std::max(0.0, lane_finish - start - ec_total);
    device.advance(sim::Phase::kHostToDevice, exposed_h2d);
    device.advance(sim::Phase::kCompute, ec_total);
  };

  // Dynamic dispatch: consecutive tasks up to and including a kernel form
  // one dispatch unit, handed in plan order to the earliest-idle GPU (the
  // simulated clock is the idle signal — a work queue, exactly).
  auto run_dynamic = [&](const std::vector<std::size_t>& ids) {
    using Entry = std::pair<double, int>;  // (clock, gpu)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> idle;
    for (int g = 0; g < m; ++g) idle.push({platform_.gpu(g).clock(), g});
    std::vector<std::size_t> unit;
    for (std::size_t id : ids) {
      unit.push_back(id);
      if (plan.tasks[id].kind != TaskKind::kKernel) continue;
      auto [clock, g] = idle.top();
      idle.pop();
      run_lane(g, unit);
      unit.clear();
      idle.push({platform_.gpu(g).clock(), g});
    }
    assert(unit.empty() && "dynamic plan must end each unit with a kernel");
  };

  // Flushes a run of lane/dynamic tasks accumulated between global tasks.
  std::vector<std::size_t> segment;
  auto flush = [&] {
    if (segment.empty()) return;
    if (plan.tasks[segment.front()].gpu == kAnyGpu) {
      run_dynamic(segment);
      segment.clear();
      return;
    }
    std::vector<std::vector<std::size_t>> lanes(
        static_cast<std::size_t>(m));
    for (std::size_t id : segment) {
      const int gpu = plan.tasks[id].gpu;
      assert(gpu >= 0 && gpu < m && "mixed dynamic/static segment");
      lanes[static_cast<std::size_t>(gpu)].push_back(id);
    }
    std::vector<int> active;
    for (int g = 0; g < m; ++g) {
      if (!lanes[static_cast<std::size_t>(g)].empty()) active.push_back(g);
    }
    const bool tracing = m > 0 && platform_.gpu(0).tracing();
    if (plan.parallel_lanes && active.size() > 1 && !tracing &&
        host_parallelism() > 1) {
      // Lanes of an AMPED-style plan own disjoint output rows and private
      // device state, so they run concurrently on the host pool —
      // bit-identical to the serial order (see thread_pool_test).
      std::vector<std::exception_ptr> errors(active.size());
      global_thread_pool().parallel_for(active.size(), [&](std::size_t i) {
        try {
          const int g = active[i];
          run_lane(g, lanes[static_cast<std::size_t>(g)]);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
      for (auto& e : errors) {
        if (e) std::rethrow_exception(e);
      }
    } else {
      for (int g : active) run_lane(g, lanes[static_cast<std::size_t>(g)]);
    }
    segment.clear();
  };

  for (std::size_t id = 0; id < plan.tasks.size(); ++id) {
    Task& t = plan.tasks[id];
    switch (t.kind) {
      case TaskKind::kBarrier:
        flush();
        platform_.barrier();
        break;
      case TaskKind::kAllGather: {
        flush();
        std::vector<std::uint64_t> part_bytes(static_cast<std::size_t>(m),
                                              0);
        for (int g = 0; g < m; ++g) {
          part_bytes[static_cast<std::size_t>(g)] =
              report.owned_rows[static_cast<std::size_t>(g)] * t.row_bytes;
        }
        allgather_factor_rows(platform_, part_bytes, t.allgather);
        break;
      }
      case TaskKind::kHostOp:
        flush();
        t.host_op(platform_);
        break;
      default:
        segment.push_back(id);
    }
  }
  flush();
  return report;
}

}  // namespace amped::exec
