// Pluggable schedulers: policy objects that lower one AmpedTensor mode
// into an executable Plan.
//
// A scheduler owns exactly the decision the paper studies — which shard
// runs where, in what order, under which streaming discipline — and
// nothing else: task construction, streaming, arithmetic, and clock
// accounting are shared (exec/plan.hpp). The four pre-engine policies
// (static-greedy, contiguous, weighted-static, dynamic-queue — each
// static one optionally pipelined) are reimplemented here with
// bit-identical outputs and simulated times, plus one new policy the
// loop-based executor could not express cleanly: kCostModel, which
// prices every shard on every device with sim/cost_model and balances
// *seconds*, not nonzeros, across heterogeneous GPUs
// (sim::PlatformConfig::gpu_overrides).
//
// Adding a policy = subclassing Scheduler (~50 lines), not writing a new
// execution loop.
#pragma once

#include <memory>
#include <string>

#include "core/mttkrp.hpp"
#include "exec/plan.hpp"

namespace amped::exec {

// Everything a scheduler may consult when lowering one output mode.
// `platform` is const: schedulers predict costs, only the executor
// advances clocks. `out` and `factors` are captured by the kernel
// closures and must outlive the plan's execution.
struct ModeLowerInput {
  const sim::Platform& platform;
  const AmpedTensor& tensor;
  std::size_t mode;
  const FactorSet& factors;
  DenseMatrix& out;
  const MttkrpOptions& options;
  sim::KernelProfile profile;  // resolved via resolve_mttkrp_profile
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;
  virtual Plan lower(const ModeLowerInput& in) const = 0;
};

// Scheduler for `options.policy` honouring `options.pipelined_streaming`
// (which applies to the static policies; plain dynamic dispatch stays
// sequential as before — kDynamicLookahead is the dynamic policy that
// overlaps the next shard's H2D with the current grid).
std::unique_ptr<Scheduler> make_scheduler(const MttkrpOptions& options);
std::unique_ptr<Scheduler> make_scheduler(SchedulingPolicy policy,
                                          bool pipelined);

// The cost-model scheduler's per-shard estimate of simulated seconds on
// one GPU (H2D + grid under that device's roofline). Run structure comes
// from a scan of the resident copy, or from the run-stats segment
// persisted in the spill file. Exposed for tests.
//
// `streaming_lanes` prices the H2D leg: -1 (default) keeps the legacy
// static all-lanes share; a positive count prices the transfer at the
// fluid processor-sharing rate for that many concurrently streaming
// lanes (sim/fluid_link.hpp). The cost-model scheduler passes the number
// of lanes it will actually keep busy, so sparse assignments are no
// longer over-charged for contention that never happens.
double estimate_shard_seconds(const ModeLowerInput& in, const Shard& shard,
                              int gpu, int streaming_lanes = -1);

}  // namespace amped::exec
