// Plan composition: merge independently lowered plans into one so shards
// from different tensors (or different modes) interleave on one platform.
//
// Every plan lowered by a scheduler names the output rows it updates
// (Plan::scopes, a RowScope per source plan after composition). When the
// scopes of the composed plans are pairwise disjoint — different output
// buffers, or non-overlapping row ranges of one buffer — no kernel of one
// plan can touch memory another plan writes, so the barriers that only
// ordered compute against the epilogue *within* one source plan are
// elided: each GPU lane flows straight from plan A's last shard into plan
// B's first shard, filling lanes that would otherwise idle while the
// slowest GPU drains A. The per-plan all-gathers are deferred to the end
// of the composed plan (their internal barrier already synchronises the
// devices) and are sized from their own scope's runtime row ownership.
//
// When scopes overlap, or a plan does not have the canonical
// lane-tasks → barrier → all-gather shape, compose() falls back to plain
// concatenation with every barrier kept — semantically identical to
// running the plans back to back, with zero elision.
//
// Composition requires a homogeneous batch: all plans sequential, all
// pipelined, or all dynamic (kAnyGpu). Mixing dispatch disciplines in one
// plan has no defined lane semantics and throws std::invalid_argument.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "exec/plan.hpp"

namespace amped::exec {

// What compose() proved and did; returned alongside the merged plan.
struct ComposeInfo {
  std::size_t plans = 0;            // source plans merged
  std::size_t elided_barriers = 0;  // barriers dropped thanks to disjointness
  bool disjoint = false;            // row-ownership scopes pairwise disjoint
  // compose_graph only: scope s of the merged plan came from link
  // scope_chain_link[s].second of chain scope_chain_link[s].first, so
  // batch callers can attribute per-scope report rows (kernel spans,
  // gather edges) back to (tensor, iteration, mode).
  std::vector<std::pair<std::size_t, std::size_t>> scope_chain_link;
};

// Merges `plans` into one executable plan, consuming the inputs (tasks,
// kernels, and streamers are moved out; the sources are left empty).
// Scope tags, dependency edges, and streamer indices are remapped; see
// the file comment for the barrier-elision rule.
Plan compose(std::span<Plan> plans, ComposeInfo* info = nullptr);

// Whole-graph composition: merges per-workload *chains* of canonical mode
// plans into one graph-scheduled plan (Plan::graph) whose all-gathers are
// dependency edges rather than plan-suffix phases.
//
// Chain c is an ordered sequence of links; each link is one lowered mode
// plan of the canonical shape (lane tasks, barrier, all-gather) with an
// optional trailing kHostOp appended by the caller (the ALS solve that
// consumes the gathered factor). Per link:
//  - the barrier is dropped (counted in ComposeInfo::elided_barriers):
//    ordering is carried by edges instead;
//  - the all-gather's deps are rewritten to the link's kernel tasks, so
//    it starts when its own producers finish — not when every lane of
//    every chain drains;
//  - the host op (if any) depends on the gather and on the chain's
//    previous host op;
//  - the next link's kernels gain a dep on this link's tail (host op, or
//    gather when there is none). SpillFetch/H2D tasks deliberately do
//    not: shard payloads are factor-independent, so lanes may prefetch
//    and stream past a pending gather.
//
// Chains must be pairwise scope-disjoint (different tensors' factors);
// links *within* one chain may overlap (successive iterations update the
// same factor buffer) because the dependency edges order them. Scopes of
// the merged plan are numbered chain-major (chain c's links contiguous);
// tasks are emitted link-major (round-robin across chains) so every
// dependency points backward and plan order is a topological order —
// which is the order the executor performs real side effects in, making
// outputs memcmp-identical to running every chain solo.
//
// Inputs are consumed like compose(). Throws std::invalid_argument on
// non-canonical links, dynamic (kAnyGpu) plans, or overlapping chains.
Plan compose_graph(std::span<std::vector<Plan>> chains,
                   ComposeInfo* info = nullptr);

}  // namespace amped::exec
