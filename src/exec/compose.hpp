// Plan composition: merge independently lowered plans into one so shards
// from different tensors (or different modes) interleave on one platform.
//
// Every plan lowered by a scheduler names the output rows it updates
// (Plan::scopes, a RowScope per source plan after composition). When the
// scopes of the composed plans are pairwise disjoint — different output
// buffers, or non-overlapping row ranges of one buffer — no kernel of one
// plan can touch memory another plan writes, so the barriers that only
// ordered compute against the epilogue *within* one source plan are
// elided: each GPU lane flows straight from plan A's last shard into plan
// B's first shard, filling lanes that would otherwise idle while the
// slowest GPU drains A. The per-plan all-gathers are deferred to the end
// of the composed plan (their internal barrier already synchronises the
// devices) and are sized from their own scope's runtime row ownership.
//
// When scopes overlap, or a plan does not have the canonical
// lane-tasks → barrier → all-gather shape, compose() falls back to plain
// concatenation with every barrier kept — semantically identical to
// running the plans back to back, with zero elision.
//
// Composition requires a homogeneous batch: all plans sequential, all
// pipelined, or all dynamic (kAnyGpu). Mixing dispatch disciplines in one
// plan has no defined lane semantics and throws std::invalid_argument.
#pragma once

#include <span>

#include "exec/plan.hpp"

namespace amped::exec {

// What compose() proved and did; returned alongside the merged plan.
struct ComposeInfo {
  std::size_t plans = 0;            // source plans merged
  std::size_t elided_barriers = 0;  // barriers dropped thanks to disjointness
  bool disjoint = false;            // row-ownership scopes pairwise disjoint
};

// Merges `plans` into one executable plan, consuming the inputs (tasks,
// kernels, and streamers are moved out; the sources are left empty).
// Scope tags, dependency edges, and streamer indices are remapped; see
// the file comment for the barrier-elision rule.
Plan compose(std::span<Plan> plans, ComposeInfo* info = nullptr);

}  // namespace amped::exec
