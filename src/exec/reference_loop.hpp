// The pre-engine MTTKRP executor, frozen.
//
// This is the loop-based implementation core/mttkrp.cpp carried before
// the execution-plan engine (exec/plan.hpp) replaced it: the static,
// dynamic-queue, and pipelined streaming loops hand-rolled against
// sim::Platform. It is kept verbatim for two jobs and must not evolve:
//
//  1. Golden-value testing — tests/exec_plan_test.cpp asserts that every
//     pre-engine policy produces bit-identical outputs AND simulated
//     times through the plan engine.
//  2. Overhead tracking — bench_host_throughput's dispatch/ series
//     compares plan-based against loop-based dispatch wall-clock; CI
//     fails if the abstraction costs more than 5%.
//
// SchedulingPolicy::kCostModel postdates this code; it falls back to the
// nnz-LPT assignment here (assign_shards) and is not golden-compared.
#pragma once

#include "core/mttkrp.hpp"

namespace amped::exec {

ModeBreakdown reference_loop_mttkrp_one_mode(sim::Platform& platform,
                                             const AmpedTensor& tensor,
                                             const FactorSet& factors,
                                             std::size_t mode,
                                             DenseMatrix& out,
                                             const MttkrpOptions& options);

MttkrpReport reference_loop_mttkrp_all_modes(sim::Platform& platform,
                                             const AmpedTensor& tensor,
                                             const FactorSet& factors,
                                             std::vector<DenseMatrix>& outputs,
                                             const MttkrpOptions& options);

}  // namespace amped::exec
