// Frozen pre-engine implementation — see reference_loop.hpp. Do not
// optimise or restructure; its value is being exactly the code the plan
// engine must reproduce.
#include "exec/reference_loop.hpp"

#include <algorithm>
#include <cassert>
#include <exception>
#include <memory>
#include <numeric>
#include <queue>

#include "core/ec_kernel.hpp"
#include "io/shard_stream.hpp"
#include "sim/executor.hpp"
#include "util/thread_pool.hpp"

namespace amped::exec {

namespace {

// Simulated costs of one shard on one GPU. prepare_shard performs the
// real arithmetic and cost evaluation without touching device clocks, so
// callers can apply either sequential or pipelined streaming semantics.
struct ShardCost {
  std::uint64_t payload = 0;  // COO bytes streamed
  double h2d = 0.0;           // transfer seconds
  double ec = 0.0;            // grid execution seconds (incl. launch)
};

ShardCost prepare_shard(sim::Platform& platform, int gpu,
                        const AmpedTensor::ModeCopy& copy, const Shard& shard,
                        const io::ShardStreamer::View& view,
                        const FactorSet& factors, DenseMatrix& out,
                        const MttkrpOptions& options,
                        const sim::KernelProfile& profile) {
  const auto& device = platform.gpu(gpu);
  ShardCost cost;
  cost.payload = shard.nnz() * view.data->bytes_per_nnz();
  cost.h2d = platform.h2d_seconds(cost.payload);

  const int sm_count = device.spec().sm_count;
  nnz_t isp_size = options.isp_size;
  if (isp_size == 0) {
    isp_size = std::max<nnz_t>(options.block_width,
                               (shard.nnz() + sm_count - 1) /
                                   static_cast<nnz_t>(sm_count));
  }

  const nnz_t shard_base = shard.nnz_begin - view.base;
  // Canonical accumulation grouping (kept in lockstep with
  // make_shard_kernel): the arithmetic runs once over the whole shard so
  // the output bits do not depend on the executing device's sm_count;
  // the device-dependent ISP split only prices the grid, via an
  // index-only stats rescan.
  run_ec_block(*view.data, shard_base,
               shard_base + static_cast<nnz_t>(shard.nnz()),
               copy.partition.mode, factors, out, BlockOrder::kOutputSorted);
  const index_t* out_idx = view.data->indices(copy.partition.mode).data();
  std::vector<double> block_seconds;
  for (auto [lo, hi] : split_isps(shard, isp_size)) {
    RunStatsAccumulator acc(BlockOrder::kOutputSorted);
    for (nnz_t n = shard_base + lo; n < shard_base + hi; ++n) {
      acc.feed(out_idx[n]);
    }
    const auto stats =
        acc.finish(view.data->num_modes(), factors.rank(),
                   static_cast<std::size_t>(options.block_width));
    block_seconds.push_back(
        platform.cost_model(gpu).ec_block_seconds(stats, profile));
  }
  cost.ec = platform.kernel_launch_seconds() +
            sim::grid_makespan(block_seconds, sm_count);
  return cost;
}

std::unique_ptr<io::ShardStreamer> make_streamer(
    const AmpedTensor::ModeCopy& copy, std::span<const std::size_t> ids) {
  if (!copy.spilled()) {
    return std::make_unique<io::ShardStreamer>(copy.tensor);
  }
  std::vector<std::pair<nnz_t, nnz_t>> ranges;
  ranges.reserve(ids.size());
  for (std::size_t id : ids) {
    const auto& shard = copy.partition.shards[id];
    ranges.emplace_back(shard.nnz_begin, shard.nnz_end);
  }
  return std::make_unique<io::ShardStreamer>(*copy.spill, std::move(ranges));
}

double execute_shard(sim::Platform& platform, int gpu,
                     const AmpedTensor::ModeCopy& copy, const Shard& shard,
                     const io::ShardStreamer::View& view,
                     const FactorSet& factors, DenseMatrix& out,
                     const MttkrpOptions& options,
                     const sim::KernelProfile& profile) {
  auto& device = platform.gpu(gpu);
  const ShardCost cost =
      prepare_shard(platform, gpu, copy, shard, view, factors, out, options,
                    profile);
  device.alloc(cost.payload);
  platform.h2d(gpu, cost.payload);
  std::string label;
  if (device.tracing()) {
    label = "grid mode" + std::to_string(copy.partition.mode) + " idx[" +
            std::to_string(shard.index_begin) + "," +
            std::to_string(shard.index_end) + ")";
  }
  device.advance(sim::Phase::kCompute, cost.ec, std::move(label));
  device.free(cost.payload);
  return cost.ec;
}

double execute_pipelined(sim::Platform& platform, int gpu,
                         const AmpedTensor::ModeCopy& copy,
                         std::span<const std::size_t> shard_ids,
                         io::ShardStreamer& streamer,
                         const FactorSet& factors, DenseMatrix& out,
                         const MttkrpOptions& options,
                         const sim::KernelProfile& profile,
                         double* ec_total_out) {
  auto& device = platform.gpu(gpu);
  const double start = device.clock();
  double copy_clock = start;
  double compute_clock = start;
  double ec_total = 0.0;
  for (std::size_t pos = 0; pos < shard_ids.size(); ++pos) {
    const auto& shard = copy.partition.shards[shard_ids[pos]];
    const auto view = streamer.acquire(pos);
    const ShardCost cost = prepare_shard(platform, gpu, copy, shard, view,
                                         factors, out, options, profile);
    const double landed = copy_clock + cost.h2d;
    copy_clock = landed;
    compute_clock = std::max(compute_clock, landed) + cost.ec;
    ec_total += cost.ec;
  }
  const double finish = std::max(copy_clock, compute_clock);
  const double exposed_h2d =
      std::max(0.0, finish - start - ec_total);
  device.advance(sim::Phase::kHostToDevice, exposed_h2d);
  device.advance(sim::Phase::kCompute, ec_total);
  if (ec_total_out) *ec_total_out = ec_total;
  return finish - start;
}

}  // namespace

ModeBreakdown reference_loop_mttkrp_one_mode(sim::Platform& platform,
                                             const AmpedTensor& tensor,
                                             const FactorSet& factors,
                                             std::size_t mode,
                                             DenseMatrix& out,
                                             const MttkrpOptions& options) {
  const int m = platform.num_gpus();
  const auto& copy = tensor.mode_copy(mode);
  const auto& partition = copy.partition;
  const auto profile =
      resolve_mttkrp_profile(options, tensor, mode, platform, factors.rank());

  assert(out.rows() == tensor.dims()[mode] && out.cols() == factors.rank());
  out.set_zero();

  ModeBreakdown bd;
  bd.mode = mode;
  bd.per_gpu_compute.assign(static_cast<std::size_t>(m), 0.0);

  platform.barrier();
  const double t0 = platform.makespan();
  auto agg0 = platform.aggregate_timeline();

  const std::uint64_t factor_bytes = factors.total_bytes();
  for (int g = 0; g < m; ++g) platform.gpu(g).alloc(factor_bytes);

  std::vector<std::uint64_t> owned_rows(static_cast<std::size_t>(m), 0);

  if (options.policy == SchedulingPolicy::kDynamicQueue) {
    using Entry = std::pair<double, int>;  // (clock, gpu)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> idle;
    for (int g = 0; g < m; ++g) idle.push({platform.gpu(g).clock(), g});
    std::vector<std::size_t> all_ids(partition.shards.size());
    std::iota(all_ids.begin(), all_ids.end(), std::size_t{0});
    auto streamer = make_streamer(copy, all_ids);
    for (std::size_t s = 0; s < partition.shards.size(); ++s) {
      const auto& shard = partition.shards[s];
      auto [clock, g] = idle.top();
      idle.pop();
      const double ec =
          execute_shard(platform, g, copy, shard, streamer->acquire(s),
                        factors, out, options, profile);
      bd.per_gpu_compute[static_cast<std::size_t>(g)] += ec;
      owned_rows[static_cast<std::size_t>(g)] += shard.index_count();
      idle.push({platform.gpu(g).clock(), g});
    }
  } else {
    ShardAssignment assignment;
    if (options.policy == SchedulingPolicy::kWeightedStatic) {
      const double bytes_per_elem =
          static_cast<double>(tensor.bytes_per_nnz());
      const double h2d_per_byte =
          (platform.h2d_seconds(1u << 30) - platform.h2d_seconds(0)) /
          static_cast<double>(1u << 30);
      std::vector<double> weights(static_cast<std::size_t>(m));
      for (int g = 0; g < m; ++g) {
        const auto& cm = platform.cost_model(g);
        const double ec_per_elem =
            cm.bytes_per_nnz(tensor.num_modes(), factors.rank(), profile) /
            cm.spec().mem_bandwidth;
        weights[static_cast<std::size_t>(g)] =
            1.0 / (bytes_per_elem * h2d_per_byte + ec_per_elem);
      }
      assignment = assign_shards_weighted(partition, weights);
    } else {
      assignment = assign_shards(partition, m, options.policy);
    }
    auto run_gpu = [&](std::size_t gs) {
      const int g = static_cast<int>(gs);
      const auto& ids = assignment.per_gpu[gs];
      auto streamer = make_streamer(copy, ids);
      if (options.pipelined_streaming) {
        double ec_total = 0.0;
        execute_pipelined(platform, g, copy, ids, *streamer, factors, out,
                          options, profile, &ec_total);
        bd.per_gpu_compute[gs] += ec_total;
      } else {
        for (std::size_t pos = 0; pos < ids.size(); ++pos) {
          const double ec =
              execute_shard(platform, g, copy, partition.shards[ids[pos]],
                            streamer->acquire(pos), factors, out, options,
                            profile);
          bd.per_gpu_compute[gs] += ec;
        }
      }
      for (std::size_t id : ids) {
        owned_rows[gs] += partition.shards[id].index_count();
      }
    };
    const bool tracing = platform.gpu(0).tracing();
    if (m > 1 && !tracing && host_parallelism() > 1) {
      std::vector<std::exception_ptr> errors(static_cast<std::size_t>(m));
      global_thread_pool().parallel_for(
          static_cast<std::size_t>(m), [&](std::size_t g) {
            try {
              run_gpu(g);
            } catch (...) {
              errors[g] = std::current_exception();
            }
          });
      for (auto& e : errors) {
        if (e) std::rethrow_exception(e);
      }
    } else {
      for (std::size_t g = 0; g < static_cast<std::size_t>(m); ++g) {
        run_gpu(g);
      }
    }
  }

  platform.barrier();

  std::vector<std::uint64_t> part_bytes(static_cast<std::size_t>(m), 0);
  for (int g = 0; g < m; ++g) {
    part_bytes[static_cast<std::size_t>(g)] =
        owned_rows[static_cast<std::size_t>(g)] * factors.rank() *
        sizeof(value_t);
  }
  allgather_factor_rows(platform, part_bytes, options.allgather);

  for (int g = 0; g < m; ++g) platform.gpu(g).free(factor_bytes);

  bd.seconds = platform.makespan() - t0;
  auto agg1 = platform.aggregate_timeline();
  bd.h2d = agg1.total(sim::Phase::kHostToDevice) -
           agg0.total(sim::Phase::kHostToDevice);
  bd.compute =
      agg1.total(sim::Phase::kCompute) - agg0.total(sim::Phase::kCompute);
  bd.p2p = agg1.total(sim::Phase::kPeerToPeer) -
           agg0.total(sim::Phase::kPeerToPeer);
  bd.sync = agg1.total(sim::Phase::kSync) - agg0.total(sim::Phase::kSync);
  return bd;
}

MttkrpReport reference_loop_mttkrp_all_modes(sim::Platform& platform,
                                             const AmpedTensor& tensor,
                                             const FactorSet& factors,
                                             std::vector<DenseMatrix>& outputs,
                                             const MttkrpOptions& options) {
  MttkrpReport report;
  report.per_gpu_compute.assign(
      static_cast<std::size_t>(platform.num_gpus()), 0.0);
  outputs.clear();
  outputs.reserve(tensor.num_modes());

  platform.barrier();
  const double t0 = platform.makespan();
  for (std::size_t d = 0; d < tensor.num_modes(); ++d) {
    outputs.emplace_back(tensor.dims()[d], factors.rank());
    auto bd = reference_loop_mttkrp_one_mode(platform, tensor, factors, d,
                                             outputs.back(), options);
    for (std::size_t g = 0; g < bd.per_gpu_compute.size(); ++g) {
      report.per_gpu_compute[g] += bd.per_gpu_compute[g];
    }
    report.modes.push_back(std::move(bd));
  }
  report.total_seconds = platform.makespan() - t0;
  return report;
}

}  // namespace amped::exec
