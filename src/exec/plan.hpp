// Execution-plan layer: one task IR + one executor for every execution
// strategy in the repo.
//
// Before this layer, AMPED's MTTKRP hand-rolled three streaming loops
// (static, dynamic-queue, pipelined) and every baseline runner in
// src/baselines/ reimplemented its own stream-and-compute loop against
// sim::Platform. A Plan expresses all of them in one vocabulary: a list
// of Tasks — SpillFetch (host read-ahead hand-off), H2D, Kernel, D2H,
// Barrier, AllGather, HostOp — with explicit dependencies, grouped into
// per-GPU lanes. PlanExecutor is the only code that touches device
// clocks: it runs any plan's real arithmetic (through the kernel
// closures) and charges simulated time exactly as the bespoke loops did,
// so outputs AND simulated times are bit-identical to the pre-engine
// implementations (asserted in tests/exec_plan_test.cpp against the
// frozen reference in exec/reference_loop.hpp).
//
// Lane semantics (chosen per Plan):
//  - sequential: one engine per GPU; H2D and Kernel interleave on the
//    device clock (the paper's additive stream-then-compute, Fig. 7).
//  - pipelined: two engines per GPU (copy + compute); a kernel may not
//    start before its H2D dependency lands, and only the *exposed*
//    (non-overlapped) transfer time is charged (ablation A6).
//  - dynamic: tasks carry gpu == kAnyGpu and are dispatched in plan
//    order to the earliest-idle GPU — the simulated clock is the work
//    queue, reproducing dynamic load balancing exactly.
//  - dynamic look-ahead: kAnyGpu tasks with `pipelined` set. Dispatch
//    units go to the GPU whose pipeline accepts them earliest, and a
//    unit's H2D is issued on that GPU's copy engine while the previous
//    unit's grid still computes — the pipelined commit rules (exposed
//    transfer only) applied to dynamic dispatch.
//
// Since PR 5 a plan also names the output rows it updates (RowScope) and
// every task carries a scope index. A solo plan has one scope; composed
// plans (exec/compose.hpp) carry one scope per source plan so barriers
// can be elided across provably disjoint outputs and each all-gather is
// sized from its own scope's row ownership.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/allgather.hpp"
#include "exec/backend.hpp"
#include "io/shard_stream.hpp"
#include "sim/platform.hpp"
#include "tensor/types.hpp"

namespace amped::exec {

enum class TaskKind {
  kSpillFetch,  // acquire the next shard view from a ShardStreamer
  kH2D,         // host -> device payload transfer (copy engine)
  kKernel,      // one grid: real arithmetic + simulated grid seconds
  kD2H,         // device -> host transfer (partial results)
  kBarrier,     // inter-GPU barrier
  kAllGather,   // factor-row exchange sized from runtime row ownership
  kHostOp,      // host-side step (e.g. the equal-nnz CPU merge)
};

// Tasks with this GPU id are dispatched at run time to the earliest-idle
// GPU (dynamic-queue scheduling); all other tasks name their lane.
inline constexpr int kAnyGpu = -1;

// The output rows a plan updates: the identity of the output buffer plus
// the row range touched within it. Two scopes over different buffers (or
// non-overlapping rows of the same buffer) can never write the same
// memory, which is the disjointness proof compose() relies on to elide
// barriers between source plans.
struct RowScope {
  const void* output = nullptr;  // identity of the output buffer
  index_t row_begin = 0;         // rows [begin, end) updated within it
  index_t row_end = 0;
};

inline bool disjoint(const RowScope& a, const RowScope& b) {
  if (a.output != b.output) return true;
  return a.row_end <= b.row_begin || b.row_end <= a.row_begin;
}

// Runtime context handed to kernel closures. `view` is the shard view
// produced by the lane's most recent SpillFetch task (nullptr when the
// plan streams nothing).
struct ExecContext {
  sim::Platform& platform;
  int gpu = 0;
  const io::ShardStreamer::View* view = nullptr;
};

// Performs the real arithmetic of one grid and returns the simulated
// seconds the grid occupies the device (including launch overhead).
using KernelFn = std::function<double(const ExecContext&)>;

struct Task {
  TaskKind kind = TaskKind::kKernel;
  int gpu = kAnyGpu;
  // Index into Plan::scopes (0 for solo plans). Kernel ownership and
  // all-gather sizing are accounted per scope so composed plans keep
  // per-tensor numbers separable.
  std::size_t scope = 0;
  // Explicit dependencies (indices into Plan::tasks). Lane program order
  // is an implicit dependency on each engine; `deps` carries the
  // cross-engine edges (kernel <- its H2D, H2D <- its SpillFetch) that
  // the pipelined interpreter synchronises on.
  std::vector<std::size_t> deps;

  // kSpillFetch: acquire position `stream_pos` of plan.streamers[streamer].
  std::size_t streamer = 0;
  std::size_t stream_pos = 0;

  // kH2D / kD2H: link payload; alloc_bytes is charged to the device
  // memory meter before the transfer (0 = no allocation tracked).
  std::uint64_t transfer_bytes = 0;
  std::uint64_t alloc_bytes = 0;
  // kH2D: the absolute nonzero range of the lane's current stream view
  // this transfer stages (begin == end when the lowering did not
  // annotate it). The simulator only needs transfer_bytes; the host
  // backend uses the range to perform the copy for real — staging
  // exactly these elements into a device buffer the kernel then reads.
  nnz_t payload_begin = 0;
  nnz_t payload_end = 0;

  // kKernel.
  KernelFn kernel;
  std::uint64_t free_bytes = 0;  // device memory released after the grid
  index_t owned_rows = 0;        // output rows this grid updates (AllGather sizing)
  // Trace metadata: when `labelled`, the executor emits the shard label
  // "grid mode<mode> idx[begin,end)" on the compute event (built only
  // when a trace is attached, like the pre-engine loop did).
  bool labelled = false;
  std::size_t mode = 0;
  index_t index_begin = 0;
  index_t index_end = 0;

  // kAllGather: part_bytes[g] = rows owned by GPU g so far * row_bytes.
  AllGatherAlgo allgather = AllGatherAlgo::kRing;
  std::uint64_t row_bytes = 0;

  // kHostOp.
  std::function<void(sim::Platform&)> host_op;
};

// Trace label of a labelled kernel task ("grid mode<M> idx[b,e)"),
// matching the pre-engine loop verbatim. Shared by the simulated and
// host backends so the two traces of one plan carry identical kernel
// labels and line up row-for-row in Perfetto.
std::string shard_label(const Task& t);

struct Plan {
  std::string scheduler;  // name of the scheduler that lowered this plan
  std::size_t mode = 0;   // output mode (reporting only)
  // Lane interpretation: sequential (false) or double-buffered (true).
  // For kAnyGpu tasks the flag selects look-ahead dynamic dispatch.
  bool pipelined = false;
  // Whether per-GPU lanes may run on the host thread pool. Only safe when
  // lanes never touch the same output rows (AMPED's shard partition
  // guarantees this; the equal-nnz chunks do not).
  bool parallel_lanes = false;
  // Graph-scheduled plan (exec/compose.hpp compose_graph): all-gathers
  // are dependency edges (Task::deps names their kernel producers, and
  // downstream kernels name the gather) instead of plan-suffix phases,
  // and the executor runs the plan with the dependency-driven interpreter
  // rather than the segment/flush loop. Legacy plans (graph == false) keep
  // their bit-identical pre-engine semantics untouched.
  bool graph = false;
  // Row-ownership scopes; Task::scope indexes this. Empty means one
  // anonymous scope (solo plans lowered before composition existed).
  std::vector<RowScope> scopes;
  std::vector<Task> tasks;
  // Shard sources owned by the plan; SpillFetch tasks index into this.
  std::vector<std::unique_ptr<io::ShardStreamer>> streamers;

  std::size_t num_scopes() const {
    return scopes.empty() ? 1 : scopes.size();
  }
};

// What the executor learned while running a plan.
struct ExecReport {
  // One record per executed all-gather edge, in execution order. Scope
  // rows used to aggregate gather bytes at plan end only; reporting them
  // per edge keeps per-iteration (and per-tensor) gather cost attributable
  // in composed and graph-scheduled plans (--report-json emits these).
  // `start`/`finish` are modelled timeline offsets under the simulator and
  // run-clock offsets under the host backend.
  struct GatherEdge {
    std::size_t scope = 0;
    std::size_t mode = 0;
    std::uint64_t bytes = 0;   // total bytes crossing any link
    double seconds = 0.0;      // modelled (sim) or measured (host) cost
    double start = 0.0;
    double finish = 0.0;
  };
  std::vector<GatherEdge> gather_edges;

  // Modelled start/finish of each scope's kernel span (first kernel start,
  // last kernel finish) on the same time base as GatherEdge. Filled by the
  // graph interpreter and the host backend; -1 where untracked (legacy
  // simulator paths, scopes that ran no kernel).
  std::vector<double> scope_kernel_start;
  std::vector<double> scope_kernel_finish;

  // EC seconds charged per GPU, summed over scopes (sized to the
  // platform's GPU count; idle GPUs report 0.0). Feeds
  // ModeBreakdown::per_gpu_compute. Under the simulated backend these
  // are modelled grid seconds; under the host backend they are measured
  // wall seconds of the same kernels.
  std::vector<double> per_gpu_compute;
  // Per-scope splits of the same accounting: [scope][gpu]. Solo plans
  // have exactly one scope; composed plans report one row per source
  // plan so batch callers can attribute compute per tensor.
  std::vector<std::vector<double>> scope_gpu_compute;
  // Output rows owned per scope per GPU, accumulated from executed
  // kernels; sizes each scope's all-gather.
  std::vector<std::vector<std::uint64_t>> scope_owned_rows;

  // Host-backend measurements (all zero under the simulator). Wall
  // seconds are real elapsed time on the executing machine; the
  // predicted columns are what the cost model priced the same work at,
  // collected from the very same kernel closures, so a single host run
  // yields directly comparable (measured, predicted) pairs.
  double wall_seconds = 0.0;     // whole-plan wall time
  double wall_spill_fetch = 0.0; // summed stream-view acquisition
  double wall_h2d = 0.0;         // summed payload staging copies
  double wall_d2h = 0.0;         // summed result copy-back
  double wall_sync = 0.0;        // summed barrier stalls (flush - lane end)
  double wall_allgather = 0.0;   // summed all-gather steps
  double wall_host_op = 0.0;     // summed host-side ops
  // Modelled EC seconds per GPU for the kernels each GPU actually ran
  // (same shape as per_gpu_compute). For a deterministic (static)
  // assignment this equals the simulator's per_gpu_compute exactly.
  std::vector<double> per_gpu_predicted_compute;
  double predicted_h2d = 0.0;    // modelled seconds of the staged transfers
  // Fluid-contention prediction of the same transfers: each staged copy is
  // priced at the processor-sharing rate for the number of lanes actually
  // streaming when it started (host backend samples a live counter). The
  // static predicted_h2d column prices every transfer at the all-lanes
  // share; comparing the two against wall_h2d is how
  // bench_backend_validation validates the fluid model.
  double predicted_h2d_fluid = 0.0;
};

// Runs any plan on the platform: per-GPU lanes (parallel when the plan
// allows and tracing is off), dynamic dispatch for kAnyGpu tasks, and
// global tasks (barrier / all-gather / host ops) in plan order.
// `backend` selects the machine: the clock-charging simulator (default)
// or the real host-parallel executor (exec/host_backend.hpp) — same
// outputs, measured instead of modelled time.
class PlanExecutor {
 public:
  explicit PlanExecutor(sim::Platform& platform,
                        ExecBackend backend = ExecBackend::kSimulated)
      : platform_(platform), backend_(backend) {}

  ExecReport run(Plan& plan);

 private:
  sim::Platform& platform_;
  ExecBackend backend_;
};

}  // namespace amped::exec
