#include "exec/compose.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace amped::exec {

namespace {

bool is_dynamic(const Plan& plan) {
  for (const auto& t : plan.tasks) {
    if (t.kind == TaskKind::kBarrier || t.kind == TaskKind::kAllGather ||
        t.kind == TaskKind::kHostOp) {
      continue;
    }
    return t.gpu == kAnyGpu;
  }
  return false;
}

// The shape barrier elision understands: zero or more lane tasks, then
// exactly one barrier followed by exactly one all-gather. (This is what
// every mode scheduler lowers; anything else — host ops, mid-plan
// barriers — keeps its barriers in the fallback path.)
bool canonical_mode_shape(const Plan& plan) {
  const std::size_t n = plan.tasks.size();
  if (n < 2) return false;
  if (plan.tasks[n - 2].kind != TaskKind::kBarrier ||
      plan.tasks[n - 1].kind != TaskKind::kAllGather) {
    return false;
  }
  for (std::size_t i = 0; i + 2 < n; ++i) {
    switch (plan.tasks[i].kind) {
      case TaskKind::kSpillFetch:
      case TaskKind::kH2D:
      case TaskKind::kD2H:
      case TaskKind::kKernel:
        break;
      default:
        return false;
    }
  }
  return true;
}

// Moves task `t` of source plan `s` into `out`, shifting its scope,
// dependency, and streamer indices by the source plan's bases.
void append_remapped(Plan& out, Task&& t, std::size_t scope_base,
                     std::size_t task_base, std::size_t streamer_base) {
  t.scope += scope_base;
  for (auto& dep : t.deps) dep += task_base;
  if (t.kind == TaskKind::kSpillFetch) t.streamer += streamer_base;
  out.tasks.push_back(std::move(t));
}

}  // namespace

Plan compose(std::span<Plan> plans, ComposeInfo* info) {
  if (plans.empty()) {
    throw std::invalid_argument("compose: no plans given");
  }

  const bool pipelined = plans.front().pipelined;
  const bool dynamic = is_dynamic(plans.front());
  bool all_disjoint = true;
  bool all_canonical = true;
  bool parallel_lanes = true;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const Plan& p = plans[i];
    if (p.scopes.size() > 1) {
      throw std::invalid_argument(
          "compose: plan \"" + p.scheduler + "\" is already composed");
    }
    if (p.pipelined != pipelined || is_dynamic(p) != dynamic) {
      throw std::invalid_argument(
          "compose: plans mix dispatch disciplines (sequential/pipelined/"
          "dynamic must match across the batch)");
    }
    parallel_lanes = parallel_lanes && p.parallel_lanes;
    all_canonical = all_canonical && canonical_mode_shape(p);
    const RowScope si = p.scopes.empty() ? RowScope{} : p.scopes.front();
    for (std::size_t j = 0; j < i; ++j) {
      const Plan& q = plans[j];
      const RowScope sj = q.scopes.empty() ? RowScope{} : q.scopes.front();
      if (!disjoint(si, sj)) all_disjoint = false;
    }
  }
  // An anonymous scope (no output named) proves nothing: treat it as
  // overlapping everything so elision never reorders unknown writes.
  for (const Plan& p : plans) {
    if (p.scopes.empty() || p.scopes.front().output == nullptr) {
      all_disjoint = false;
    }
  }
  const bool elide = all_disjoint && all_canonical;

  Plan out;
  out.mode = plans.front().mode;
  out.pipelined = pipelined;
  out.parallel_lanes = parallel_lanes;
  out.scheduler = "composed(";
  for (std::size_t i = 0; i < plans.size(); ++i) {
    if (i) out.scheduler += "+";
    out.scheduler += plans[i].scheduler;
  }
  out.scheduler += ")";

  ComposeInfo result;
  result.plans = plans.size();
  result.disjoint = all_disjoint;

  std::vector<Task> deferred_gathers;

  // Unit table for the dynamic interleave: every plan's lane tasks must
  // decompose exactly into kernel-terminated chains, or the contiguous
  // path below handles the batch instead (nothing may be dropped).
  struct Unit {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::uint64_t payload = 0;  // H2D bytes: the merge's size signal
  };
  bool interleave = elide && dynamic;
  std::vector<std::vector<Unit>> unit_table(plans.size());
  if (interleave) {
    for (std::size_t i = 0; i < plans.size() && interleave; ++i) {
      const Plan& p = plans[i];
      Unit unit;
      for (std::size_t t = 0; t + 2 < p.tasks.size(); ++t) {
        if (p.tasks[t].kind == TaskKind::kH2D) {
          unit.payload += p.tasks[t].transfer_bytes;
        }
        if (p.tasks[t].kind == TaskKind::kKernel) {
          unit.end = t + 1;
          unit_table[i].push_back(unit);
          unit = Unit{t + 1, t + 1, 0};
        }
      }
      interleave = unit.begin + 2 == p.tasks.size();
    }
  }

  if (interleave) {
    // Dynamic batch: one merged queue feeds every GPU, so the *order* of
    // the queue is the schedule. Concatenating queue A before queue B
    // invites list-scheduling anomalies (A's straggler lands late and
    // parks three GPUs); the merge instead always emits the queue whose
    // next unit carries the most H2D bytes — LPT in spirit: heavy shards
    // surface early, small ones backfill the tail. Only plan-relative
    // order is constrained (each streamer's fetch positions must stay
    // sequential), and that is preserved: units within one plan never
    // reorder. Dependencies always point within their own unit, so each
    // unit remaps by its own offset.
    std::vector<std::size_t> scope_base(plans.size());
    std::vector<std::size_t> streamer_base(plans.size());
    for (std::size_t i = 0; i < plans.size(); ++i) {
      Plan& p = plans[i];
      scope_base[i] = out.scopes.size();
      streamer_base[i] = out.streamers.size();
      out.scopes.push_back(p.scopes.empty() ? RowScope{} : p.scopes.front());
      for (auto& s : p.streamers) out.streamers.push_back(std::move(s));
      ++result.elided_barriers;  // the epilogue barrier, dropped below
      Task gather = std::move(p.tasks.back());
      gather.scope += scope_base[i];
      deferred_gathers.push_back(std::move(gather));
    }
    std::vector<std::size_t> next_unit(plans.size(), 0);
    for (;;) {
      std::size_t pick = plans.size();
      for (std::size_t i = 0; i < plans.size(); ++i) {
        if (next_unit[i] >= unit_table[i].size()) continue;
        if (pick == plans.size() ||
            unit_table[i][next_unit[i]].payload >
                unit_table[pick][next_unit[pick]].payload) {
          pick = i;
        }
      }
      if (pick == plans.size()) break;
      const Unit unit = unit_table[pick][next_unit[pick]++];
      // Tasks keep their within-unit contiguity, so a dep (always an
      // earlier task of the same unit) remaps by the unit's offset.
      const std::size_t new_base = out.tasks.size();
      for (std::size_t t = unit.begin; t < unit.end; ++t) {
        Task task = std::move(plans[pick].tasks[t]);
        task.scope += scope_base[pick];
        for (auto& dep : task.deps) dep = new_base + (dep - unit.begin);
        if (task.kind == TaskKind::kSpillFetch) {
          task.streamer += streamer_base[pick];
        }
        out.tasks.push_back(std::move(task));
      }
    }
    for (Plan& p : plans) {
      p.tasks.clear();
      p.streamers.clear();
      p.scopes.clear();
    }
    for (Task& g : deferred_gathers) out.tasks.push_back(std::move(g));
    if (info) *info = result;
    return out;
  }

  for (Plan& p : plans) {
    const std::size_t scope_base = out.scopes.size();
    const std::size_t task_base = out.tasks.size();
    const std::size_t streamer_base = out.streamers.size();
    out.scopes.push_back(p.scopes.empty() ? RowScope{} : p.scopes.front());
    for (auto& s : p.streamers) out.streamers.push_back(std::move(s));

    if (elide) {
      // Lane tasks flow into the merged segment; the epilogue barrier is
      // elided (disjoint scopes cannot order each other's writes) and the
      // all-gather is deferred behind every plan's compute. Dropped tasks
      // sit after every referenced dependency, so the base-offset remap
      // stays valid.
      for (Task& t : p.tasks) {
        if (t.kind == TaskKind::kBarrier) {
          ++result.elided_barriers;
          continue;
        }
        if (t.kind == TaskKind::kAllGather) {
          t.scope += scope_base;
          deferred_gathers.push_back(std::move(t));
          continue;
        }
        append_remapped(out, std::move(t), scope_base, task_base,
                        streamer_base);
      }
    } else {
      // Fallback: exact back-to-back semantics. A barrier between plans
      // keeps dispatch segments separated even if a source plan ends on a
      // lane task.
      if (task_base != 0 &&
          out.tasks.back().kind != TaskKind::kBarrier &&
          out.tasks.back().kind != TaskKind::kAllGather &&
          out.tasks.back().kind != TaskKind::kHostOp) {
        Task barrier;
        barrier.kind = TaskKind::kBarrier;
        out.tasks.push_back(std::move(barrier));
      }
      const std::size_t base = out.tasks.size();
      for (Task& t : p.tasks) {
        append_remapped(out, std::move(t), scope_base, base, streamer_base);
      }
    }
    p.tasks.clear();
    p.streamers.clear();
    p.scopes.clear();
  }
  for (Task& g : deferred_gathers) out.tasks.push_back(std::move(g));

  if (info) *info = result;
  return out;
}

namespace {

// canonical_mode_shape with an optional trailing host op: lane tasks,
// barrier, all-gather[, host op] — the link shape compose_graph accepts.
bool canonical_link_shape(const Plan& plan) {
  if (plan.tasks.empty()) return false;
  if (plan.tasks.back().kind == TaskKind::kHostOp) {
    const std::size_t n = plan.tasks.size() - 1;
    if (n < 2) return false;
    if (plan.tasks[n - 2].kind != TaskKind::kBarrier ||
        plan.tasks[n - 1].kind != TaskKind::kAllGather) {
      return false;
    }
    for (std::size_t i = 0; i + 2 < n; ++i) {
      switch (plan.tasks[i].kind) {
        case TaskKind::kSpillFetch:
        case TaskKind::kH2D:
        case TaskKind::kD2H:
        case TaskKind::kKernel:
          break;
        default:
          return false;
      }
    }
    return true;
  }
  return canonical_mode_shape(plan);
}

}  // namespace

Plan compose_graph(std::span<std::vector<Plan>> chains, ComposeInfo* info) {
  std::size_t total_links = 0;
  std::size_t max_links = 0;
  for (const auto& chain : chains) {
    total_links += chain.size();
    max_links = std::max(max_links, chain.size());
  }
  if (total_links == 0) {
    throw std::invalid_argument("compose_graph: no links given");
  }
  for (const auto& chain : chains) {
    for (const Plan& p : chain) {
      if (p.scopes.size() > 1) {
        throw std::invalid_argument("compose_graph: link \"" + p.scheduler +
                                    "\" is already composed");
      }
      if (is_dynamic(p)) {
        throw std::invalid_argument(
            "compose_graph: link \"" + p.scheduler +
            "\" uses dynamic dispatch (graph lanes must be static)");
      }
      if (!canonical_link_shape(p)) {
        throw std::invalid_argument(
            "compose_graph: link \"" + p.scheduler +
            "\" is not canonical (lane tasks, barrier, all-gather[, host "
            "op])");
      }
      if (p.scopes.empty() || p.scopes.front().output == nullptr) {
        throw std::invalid_argument(
            "compose_graph: link \"" + p.scheduler +
            "\" names no output scope (disjointness unprovable)");
      }
    }
  }
  // Chains must never touch each other's outputs: the graph orders links
  // *within* a chain by edges but runs chains against each other with no
  // ordering at all.
  for (std::size_t c = 0; c < chains.size(); ++c) {
    for (std::size_t d = 0; d < c; ++d) {
      for (const Plan& p : chains[c]) {
        for (const Plan& q : chains[d]) {
          if (!disjoint(p.scopes.front(), q.scopes.front())) {
            throw std::invalid_argument(
                "compose_graph: chains overlap (links \"" + p.scheduler +
                "\" and \"" + q.scheduler + "\" write the same rows)");
          }
        }
      }
    }
  }

  Plan out;
  out.scheduler = "graph(" + std::to_string(chains.size()) + " chains, " +
                  std::to_string(total_links) + " links)";
  out.pipelined = true;  // graph lanes always overlap copy and compute
  out.parallel_lanes = false;
  out.graph = true;

  ComposeInfo result;
  result.plans = total_links;
  result.disjoint = true;

  // Chain-major scope numbering; link-major task emission.
  std::vector<std::size_t> scope_base(chains.size(), 0);
  for (std::size_t c = 0; c < chains.size(); ++c) {
    scope_base[c] = out.scopes.size();
    for (std::size_t l = 0; l < chains[c].size(); ++l) {
      out.scopes.push_back(chains[c][l].scopes.front());
      result.scope_chain_link.emplace_back(c, l);
    }
  }

  // Task index of each chain's most recent tail (host op, or gather when
  // the link has none): the dependency the next link's kernels gain.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> chain_tail(chains.size(), kNone);
  std::vector<std::size_t> chain_prev_hostop(chains.size(), kNone);

  for (std::size_t l = 0; l < max_links; ++l) {
    for (std::size_t c = 0; c < chains.size(); ++c) {
      if (l >= chains[c].size()) continue;
      Plan& p = chains[c][l];
      const std::size_t scope = scope_base[c] + l;
      const std::size_t task_base = out.tasks.size();
      const std::size_t streamer_base = out.streamers.size();
      for (auto& s : p.streamers) out.streamers.push_back(std::move(s));

      const std::size_t prev_tail = chain_tail[c];
      std::vector<std::size_t> kernels;  // new ids of this link's kernels
      std::size_t gather_id = kNone;
      for (Task& t : p.tasks) {
        if (t.kind == TaskKind::kBarrier) {
          ++result.elided_barriers;
          continue;
        }
        t.scope = scope;
        // Lane deps all point at lane tasks (which precede the barrier),
        // so the uniform offset stays valid despite the dropped barrier.
        for (auto& dep : t.deps) dep += task_base;
        if (t.kind == TaskKind::kSpillFetch) t.streamer += streamer_base;
        if (t.kind == TaskKind::kKernel && prev_tail != kNone) {
          // The factor this grid reads was rewritten by the previous
          // link's tail. Fetch/H2D stay unordered: payloads are
          // factor-independent, lanes prefetch past pending gathers.
          t.deps.push_back(prev_tail);
        }
        if (t.kind == TaskKind::kAllGather) {
          t.deps = kernels;  // gather waits for its own producers only
          gather_id = out.tasks.size();
        }
        if (t.kind == TaskKind::kHostOp) {
          t.deps.clear();
          if (gather_id != kNone) t.deps.push_back(gather_id);
          if (chain_prev_hostop[c] != kNone) {
            t.deps.push_back(chain_prev_hostop[c]);
          }
        }
        out.tasks.push_back(std::move(t));
        if (out.tasks.back().kind == TaskKind::kKernel) {
          kernels.push_back(out.tasks.size() - 1);
        }
        if (out.tasks.back().kind == TaskKind::kHostOp) {
          chain_prev_hostop[c] = out.tasks.size() - 1;
        }
      }
      chain_tail[c] = out.tasks.size() - 1;
      p.tasks.clear();
      p.streamers.clear();
      p.scopes.clear();
    }
  }

  if (info) *info = std::move(result);
  return out;
}

}  // namespace amped::exec
