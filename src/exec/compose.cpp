#include "exec/compose.hpp"

#include <stdexcept>
#include <utility>

namespace amped::exec {

namespace {

bool is_dynamic(const Plan& plan) {
  for (const auto& t : plan.tasks) {
    if (t.kind == TaskKind::kBarrier || t.kind == TaskKind::kAllGather ||
        t.kind == TaskKind::kHostOp) {
      continue;
    }
    return t.gpu == kAnyGpu;
  }
  return false;
}

// The shape barrier elision understands: zero or more lane tasks, then
// exactly one barrier followed by exactly one all-gather. (This is what
// every mode scheduler lowers; anything else — host ops, mid-plan
// barriers — keeps its barriers in the fallback path.)
bool canonical_mode_shape(const Plan& plan) {
  const std::size_t n = plan.tasks.size();
  if (n < 2) return false;
  if (plan.tasks[n - 2].kind != TaskKind::kBarrier ||
      plan.tasks[n - 1].kind != TaskKind::kAllGather) {
    return false;
  }
  for (std::size_t i = 0; i + 2 < n; ++i) {
    switch (plan.tasks[i].kind) {
      case TaskKind::kSpillFetch:
      case TaskKind::kH2D:
      case TaskKind::kD2H:
      case TaskKind::kKernel:
        break;
      default:
        return false;
    }
  }
  return true;
}

// Moves task `t` of source plan `s` into `out`, shifting its scope,
// dependency, and streamer indices by the source plan's bases.
void append_remapped(Plan& out, Task&& t, std::size_t scope_base,
                     std::size_t task_base, std::size_t streamer_base) {
  t.scope += scope_base;
  for (auto& dep : t.deps) dep += task_base;
  if (t.kind == TaskKind::kSpillFetch) t.streamer += streamer_base;
  out.tasks.push_back(std::move(t));
}

}  // namespace

Plan compose(std::span<Plan> plans, ComposeInfo* info) {
  if (plans.empty()) {
    throw std::invalid_argument("compose: no plans given");
  }

  const bool pipelined = plans.front().pipelined;
  const bool dynamic = is_dynamic(plans.front());
  bool all_disjoint = true;
  bool all_canonical = true;
  bool parallel_lanes = true;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const Plan& p = plans[i];
    if (p.scopes.size() > 1) {
      throw std::invalid_argument(
          "compose: plan \"" + p.scheduler + "\" is already composed");
    }
    if (p.pipelined != pipelined || is_dynamic(p) != dynamic) {
      throw std::invalid_argument(
          "compose: plans mix dispatch disciplines (sequential/pipelined/"
          "dynamic must match across the batch)");
    }
    parallel_lanes = parallel_lanes && p.parallel_lanes;
    all_canonical = all_canonical && canonical_mode_shape(p);
    const RowScope si = p.scopes.empty() ? RowScope{} : p.scopes.front();
    for (std::size_t j = 0; j < i; ++j) {
      const Plan& q = plans[j];
      const RowScope sj = q.scopes.empty() ? RowScope{} : q.scopes.front();
      if (!disjoint(si, sj)) all_disjoint = false;
    }
  }
  // An anonymous scope (no output named) proves nothing: treat it as
  // overlapping everything so elision never reorders unknown writes.
  for (const Plan& p : plans) {
    if (p.scopes.empty() || p.scopes.front().output == nullptr) {
      all_disjoint = false;
    }
  }
  const bool elide = all_disjoint && all_canonical;

  Plan out;
  out.mode = plans.front().mode;
  out.pipelined = pipelined;
  out.parallel_lanes = parallel_lanes;
  out.scheduler = "composed(";
  for (std::size_t i = 0; i < plans.size(); ++i) {
    if (i) out.scheduler += "+";
    out.scheduler += plans[i].scheduler;
  }
  out.scheduler += ")";

  ComposeInfo result;
  result.plans = plans.size();
  result.disjoint = all_disjoint;

  std::vector<Task> deferred_gathers;

  // Unit table for the dynamic interleave: every plan's lane tasks must
  // decompose exactly into kernel-terminated chains, or the contiguous
  // path below handles the batch instead (nothing may be dropped).
  struct Unit {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::uint64_t payload = 0;  // H2D bytes: the merge's size signal
  };
  bool interleave = elide && dynamic;
  std::vector<std::vector<Unit>> unit_table(plans.size());
  if (interleave) {
    for (std::size_t i = 0; i < plans.size() && interleave; ++i) {
      const Plan& p = plans[i];
      Unit unit;
      for (std::size_t t = 0; t + 2 < p.tasks.size(); ++t) {
        if (p.tasks[t].kind == TaskKind::kH2D) {
          unit.payload += p.tasks[t].transfer_bytes;
        }
        if (p.tasks[t].kind == TaskKind::kKernel) {
          unit.end = t + 1;
          unit_table[i].push_back(unit);
          unit = Unit{t + 1, t + 1, 0};
        }
      }
      interleave = unit.begin + 2 == p.tasks.size();
    }
  }

  if (interleave) {
    // Dynamic batch: one merged queue feeds every GPU, so the *order* of
    // the queue is the schedule. Concatenating queue A before queue B
    // invites list-scheduling anomalies (A's straggler lands late and
    // parks three GPUs); the merge instead always emits the queue whose
    // next unit carries the most H2D bytes — LPT in spirit: heavy shards
    // surface early, small ones backfill the tail. Only plan-relative
    // order is constrained (each streamer's fetch positions must stay
    // sequential), and that is preserved: units within one plan never
    // reorder. Dependencies always point within their own unit, so each
    // unit remaps by its own offset.
    std::vector<std::size_t> scope_base(plans.size());
    std::vector<std::size_t> streamer_base(plans.size());
    for (std::size_t i = 0; i < plans.size(); ++i) {
      Plan& p = plans[i];
      scope_base[i] = out.scopes.size();
      streamer_base[i] = out.streamers.size();
      out.scopes.push_back(p.scopes.empty() ? RowScope{} : p.scopes.front());
      for (auto& s : p.streamers) out.streamers.push_back(std::move(s));
      ++result.elided_barriers;  // the epilogue barrier, dropped below
      Task gather = std::move(p.tasks.back());
      gather.scope += scope_base[i];
      deferred_gathers.push_back(std::move(gather));
    }
    std::vector<std::size_t> next_unit(plans.size(), 0);
    for (;;) {
      std::size_t pick = plans.size();
      for (std::size_t i = 0; i < plans.size(); ++i) {
        if (next_unit[i] >= unit_table[i].size()) continue;
        if (pick == plans.size() ||
            unit_table[i][next_unit[i]].payload >
                unit_table[pick][next_unit[pick]].payload) {
          pick = i;
        }
      }
      if (pick == plans.size()) break;
      const Unit unit = unit_table[pick][next_unit[pick]++];
      // Tasks keep their within-unit contiguity, so a dep (always an
      // earlier task of the same unit) remaps by the unit's offset.
      const std::size_t new_base = out.tasks.size();
      for (std::size_t t = unit.begin; t < unit.end; ++t) {
        Task task = std::move(plans[pick].tasks[t]);
        task.scope += scope_base[pick];
        for (auto& dep : task.deps) dep = new_base + (dep - unit.begin);
        if (task.kind == TaskKind::kSpillFetch) {
          task.streamer += streamer_base[pick];
        }
        out.tasks.push_back(std::move(task));
      }
    }
    for (Plan& p : plans) {
      p.tasks.clear();
      p.streamers.clear();
      p.scopes.clear();
    }
    for (Task& g : deferred_gathers) out.tasks.push_back(std::move(g));
    if (info) *info = result;
    return out;
  }

  for (Plan& p : plans) {
    const std::size_t scope_base = out.scopes.size();
    const std::size_t task_base = out.tasks.size();
    const std::size_t streamer_base = out.streamers.size();
    out.scopes.push_back(p.scopes.empty() ? RowScope{} : p.scopes.front());
    for (auto& s : p.streamers) out.streamers.push_back(std::move(s));

    if (elide) {
      // Lane tasks flow into the merged segment; the epilogue barrier is
      // elided (disjoint scopes cannot order each other's writes) and the
      // all-gather is deferred behind every plan's compute. Dropped tasks
      // sit after every referenced dependency, so the base-offset remap
      // stays valid.
      for (Task& t : p.tasks) {
        if (t.kind == TaskKind::kBarrier) {
          ++result.elided_barriers;
          continue;
        }
        if (t.kind == TaskKind::kAllGather) {
          t.scope += scope_base;
          deferred_gathers.push_back(std::move(t));
          continue;
        }
        append_remapped(out, std::move(t), scope_base, task_base,
                        streamer_base);
      }
    } else {
      // Fallback: exact back-to-back semantics. A barrier between plans
      // keeps dispatch segments separated even if a source plan ends on a
      // lane task.
      if (task_base != 0 &&
          out.tasks.back().kind != TaskKind::kBarrier &&
          out.tasks.back().kind != TaskKind::kAllGather &&
          out.tasks.back().kind != TaskKind::kHostOp) {
        Task barrier;
        barrier.kind = TaskKind::kBarrier;
        out.tasks.push_back(std::move(barrier));
      }
      const std::size_t base = out.tasks.size();
      for (Task& t : p.tasks) {
        append_remapped(out, std::move(t), scope_base, base, streamer_base);
      }
    }
    p.tasks.clear();
    p.streamers.clear();
    p.scopes.clear();
  }
  for (Task& g : deferred_gathers) out.tasks.push_back(std::move(g));

  if (info) *info = result;
  return out;
}

}  // namespace amped::exec
