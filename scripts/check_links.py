#!/usr/bin/env python3
"""Check intra-repo markdown links in README.md and docs/.

Every relative link target must exist on disk, and every fragment
(`path.md#anchor` or in-page `#anchor`) must match a heading in the
target file using GitHub's anchor rules (lowercase, punctuation
stripped, spaces to hyphens, duplicate suffixes -1, -2, ...).

External links (http/https/mailto) are not fetched. Exit status is the
number of broken links, so any dead link fails CI.

Usage: python3 scripts/check_links.py [file-or-dir ...]
       (defaults to README.md and docs/, relative to the repo root)
"""

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# [text](target) — skip images (![alt](...)) and nested closing parens
# inside the target (markdown rarely needs them; none in this repo).
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor transform (ASCII approximation)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # strip code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = re.sub(r"[*_]", "", text)                      # emphasis markers
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: pathlib.Path, cache={}) -> set:
    if path not in cache:
        anchors, counts, in_fence = set(), {}, False
        for line in path.read_text(encoding="utf-8").splitlines():
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            base = github_anchor(m.group(1))
            n = counts.get(base, 0)
            counts[base] = n + 1
            anchors.add(base if n == 0 else f"{base}-{n}")
        cache[path] = anchors
    return cache[path]


def check_file(md: pathlib.Path) -> list:
    errors, in_fence = [], False
    for lineno, line in enumerate(
            md.read_text(encoding="utf-8").splitlines(), start=1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            dest = md if not path_part else (
                md.parent / path_part).resolve()
            if not dest.exists():
                errors.append(f"{md.relative_to(REPO_ROOT)}:{lineno}: "
                              f"missing target: {target}")
                continue
            if fragment:
                if dest.suffix != ".md" or dest.is_dir():
                    continue
                if fragment.lower() not in anchors_of(dest):
                    errors.append(
                        f"{md.relative_to(REPO_ROOT)}:{lineno}: "
                        f"no anchor '#{fragment}' in "
                        f"{dest.relative_to(REPO_ROOT)} ({target})")
    return errors


def main(argv: list) -> int:
    roots = [pathlib.Path(a).resolve() for a in argv] or [
        REPO_ROOT / "README.md", REPO_ROOT / "docs"]
    files = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.md")))
        else:
            files.append(root)
    all_errors = []
    for md in files:
        all_errors.extend(check_file(md))
    for err in all_errors:
        print(err, file=sys.stderr)
    print(f"checked {len(files)} files, {len(all_errors)} broken links")
    return len(all_errors)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
