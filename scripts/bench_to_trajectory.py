#!/usr/bin/env python3
"""Normalise a Google Benchmark JSON dump into the BENCH_*.json trajectory.

The perf-smoke CI job runs bench_host_throughput and calls

    python3 scripts/bench_to_trajectory.py bench_host_throughput.json BENCH_5.json

producing one flat, diff-friendly document per PR so throughput trends are
visible PR over PR. Committed schema (version amped-bench-trajectory/1):

    {
      "schema": "amped-bench-trajectory/1",
      "source": "<input file stem>",
      "metrics": {
        "<benchmark name>": {"nnz_per_s": <items_per_second>},   # throughput
        "<benchmark name>": {"ms": <real_time>},                 # time-only
        ...
      }
    }

Benchmarks that call SetItemsProcessed (every series in
bench_host_throughput) report nnz/s; anything else falls back to wall
milliseconds. Aggregate rows (mean/median/stddev) are skipped so repeated
runs stay comparable. Numbers from shared CI runners are noisy — the
trajectory is trend material, not a gating threshold.
"""

import json
import pathlib
import sys


def normalise(raw: dict) -> dict:
    metrics = {}
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        if "items_per_second" in bench:
            metrics[name] = {"nnz_per_s": bench["items_per_second"]}
        else:
            time = bench["real_time"]
            unit = bench.get("time_unit", "ns")
            to_ms = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
            metrics[name] = {"ms": time * to_ms}
    return metrics


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(f"usage: {argv[0]} <benchmark.json> <BENCH_N.json>",
              file=sys.stderr)
        return 2
    in_path, out_path = pathlib.Path(argv[1]), pathlib.Path(argv[2])
    with in_path.open() as f:
        raw = json.load(f)
    metrics = normalise(raw)
    if not metrics:
        print(f"error: no benchmark entries found in {in_path}",
              file=sys.stderr)
        return 1
    doc = {
        "schema": "amped-bench-trajectory/1",
        "source": in_path.stem,
        "metrics": dict(sorted(metrics.items())),
    }
    with out_path.open("w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {len(metrics)} metrics to {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
